"""Tests for the Slurm external API facade (Section III step by step)."""

import pytest

from repro.apps import flexible_sleep
from repro.cluster import Machine
from repro.core import ResizeRequest
from repro.errors import SchedulerError
from repro.sim import Environment
from repro.slurm import Job, JobClass, JobState, SlurmAPI, SlurmController


def make_api(nodes=16):
    env = Environment()
    machine = Machine(nodes)
    ctl = SlurmController(env, machine)
    return env, machine, ctl, SlurmAPI(ctl)


def malleable(nodes):
    return Job(
        name="flex",
        num_nodes=nodes,
        time_limit=1000.0,
        job_class=JobClass.MALLEABLE,
        resize_request=ResizeRequest(min_procs=1, max_procs=16),
    )


def test_expand_protocol_step_by_step():
    """Drive the Section III expansion steps manually through the API."""
    env, machine, ctl, api = make_api()
    job_a = api.submit(malleable(4))
    env.run(until=0.1)
    assert job_a.is_running and job_a.num_nodes == 4

    # Step 1: submit job B with a dependency on A, requesting N_B nodes.
    job_b = api.submit_dependent(job_a, extra_nodes=4)
    env.run(until=0.2)
    assert job_b.is_running
    assert job_b.dependency == job_a.job_id
    assert machine.used_count == 8

    # Step 2: update B to 0 nodes -> detached allocated set.
    detached = api.update_job_to_zero_nodes(job_b)
    assert len(detached) == 4
    assert all(machine.owner_of(i) is None for i in detached)

    # Step 3: cancel B.
    api.cancel(job_b)
    assert job_b.state is JobState.CANCELLED

    # Step 4: update A to N_A + N_B.
    nodes = api.update_job_nodes(job_a, 8, attach=detached)
    assert job_a.num_nodes == 8
    assert len(nodes) == 8
    assert machine.used_count == 8


def test_shrink_is_single_update():
    env, machine, ctl, api = make_api()
    job = api.submit(malleable(8))
    env.run(until=0.1)
    nodes = api.update_job_nodes(job, 2)
    assert job.num_nodes == 2
    assert len(nodes) == 2
    assert machine.free_count == 14


def test_update_same_size_is_noop():
    env, machine, ctl, api = make_api()
    job = api.submit(malleable(4))
    env.run(until=0.1)
    assert api.update_job_nodes(job, 4) == machine.nodes_of(job.job_id)


def test_grow_requires_matching_node_set():
    env, machine, ctl, api = make_api()
    job = api.submit(malleable(4))
    env.run(until=0.1)
    with pytest.raises(SchedulerError):
        api.update_job_nodes(job, 8)  # no attach set
    with pytest.raises(SchedulerError):
        api.update_job_nodes(job, 8, attach=(9,))  # wrong count


def test_update_time_limit():
    env, machine, ctl, api = make_api()
    job = api.submit(malleable(4))
    api.update_time_limit(job, 123.0)
    assert job.time_limit == 123.0
    with pytest.raises(SchedulerError):
        api.update_time_limit(job, 0.0)


def test_squeue_and_running_views():
    env, machine, ctl, api = make_api(nodes=4)
    a = api.submit(malleable(4))
    b = api.submit(malleable(4))
    env.run(until=0.1)
    assert a in api.running()
    assert b in api.squeue()


def test_job_nodelist_hostnames():
    env, machine, ctl, api = make_api()
    job = api.submit(malleable(2))
    env.run(until=0.1)
    assert api.job_nodelist(job) == ("mn0000", "mn0001")


def test_check_status_passthrough():
    env, machine, ctl, api = make_api()
    job = api.submit(malleable(4))
    env.run(until=0.1)
    decision = api.check_status(job, job.resize_request)
    assert decision.target_procs == 16  # idle machine -> expand to max


def test_dependent_without_max_priority():
    env, machine, ctl, api = make_api()
    parent = api.submit(malleable(4))
    env.run(until=0.1)
    rj = api.submit_dependent(parent, 2, max_priority=False)
    assert rj.priority_boost == 0.0


class TestErrorPaths:
    """check_status / update_time_limit failure modes (not just happy paths)."""

    def test_check_status_unknown_job(self):
        env, machine, ctl, api = make_api()
        stranger = malleable(4)
        stranger.job_id = 999  # never submitted here
        with pytest.raises(SchedulerError, match="not running"):
            api.check_status(stranger, stranger.resize_request)

    def test_check_status_pending_job_rejected(self):
        env, machine, ctl, api = make_api(nodes=4)
        running = api.submit(malleable(4))
        queued = api.submit(malleable(4))
        env.run(until=0.1)
        assert queued.is_pending
        with pytest.raises(SchedulerError, match="not running"):
            api.check_status(queued, queued.resize_request)

    def test_check_status_finished_job_rejected(self):
        env, machine, ctl, api = make_api()
        job = api.submit(malleable(4))
        env.run(until=0.1)
        ctl.finish_job(job, JobState.COMPLETED)
        with pytest.raises(SchedulerError, match="not running"):
            api.check_status(job, job.resize_request)

    def test_update_time_limit_nonpositive(self):
        env, machine, ctl, api = make_api()
        job = api.submit(malleable(4))
        for bad in (0.0, -5.0):
            with pytest.raises(SchedulerError, match="positive"):
                api.update_time_limit(job, bad)

    def test_update_time_limit_terminal_job_rejected(self):
        env, machine, ctl, api = make_api()
        job = api.submit(malleable(4))
        env.run(until=0.1)
        ctl.finish_job(job, JobState.COMPLETED)
        before = job.time_limit
        with pytest.raises(SchedulerError, match="completed"):
            api.update_time_limit(job, 777.0)
        assert job.time_limit == before

    def test_update_time_limit_cancelled_job_rejected(self):
        env, machine, ctl, api = make_api()
        job = api.submit(malleable(4))
        api.cancel(job)
        with pytest.raises(SchedulerError, match="cancelled"):
            api.update_time_limit(job, 777.0)
