"""Property-based tests on the scheduling and policy components."""

from dataclasses import dataclass
from typing import List, Optional, Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ResizeAction, ResizeRequest
from repro.slurm import Job, PolicyConfig, PolicyView, ReconfigurationPolicy, plan_backfill


def pend(nodes, limit, jid, submit=0.0):
    job = Job(name=f"p{jid}", num_nodes=nodes, time_limit=limit)
    job.job_id = jid
    job.submit_time = submit
    return job


def run(nodes, start, limit, jid):
    job = Job(name=f"r{jid}", num_nodes=nodes, time_limit=limit)
    job.job_id = jid
    job.start_time = start
    # Running jobs hold their nodes; the planner counts the held set.
    job.nodes = tuple(range(1000 * jid, 1000 * jid + nodes))
    return job


queue_strategy = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=16),  # nodes
        st.floats(min_value=1.0, max_value=500.0),  # limit
    ),
    min_size=0,
    max_size=20,
)

running_strategy = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=8),
        st.floats(min_value=1.0, max_value=200.0),
    ),
    min_size=0,
    max_size=8,
)


class TestBackfillProperties:
    @given(queue=queue_strategy, running=running_strategy, total=st.integers(8, 32))
    @settings(max_examples=150, deadline=None)
    def test_never_overallocates(self, queue, running, total):
        running_jobs = [run(n, 0.0, l, 100 + i) for i, (n, l) in enumerate(running)]
        used = sum(j.num_nodes for j in running_jobs)
        free = max(0, total - used)
        pending = [pend(n, l, i) for i, (n, l) in enumerate(queue)]
        starts, _ = plan_backfill(pending, running_jobs, free, now=0.0)
        assert sum(j.num_nodes for j in starts) <= free
        # No job started twice.
        assert len({j.job_id for j in starts}) == len(starts)

    @given(queue=queue_strategy, running=running_strategy, total=st.integers(8, 32))
    @settings(max_examples=150, deadline=None)
    def test_backfill_does_not_delay_reservation(self, queue, running, total):
        """Backfilled jobs fit before the shadow or beside the reservation."""
        running_jobs = [run(n, 0.0, l, 100 + i) for i, (n, l) in enumerate(running)]
        used = sum(j.num_nodes for j in running_jobs)
        free = max(0, total - used)
        pending = [pend(n, l, i) for i, (n, l) in enumerate(queue)]
        starts, reservation = plan_backfill(pending, running_jobs, free, now=0.0)
        if reservation is None:
            return
        started = {j.job_id for j in starts}
        blocked_idx = pending.index(reservation.job)
        # Phase-1 starts (before the blocked job) are unconstrained; the
        # backfilled ones (after it) must respect the reservation.
        extra = reservation.extra_nodes
        for job in pending[blocked_idx + 1 :]:
            if job.job_id in started:
                fits_before = job.time_limit <= reservation.shadow_time
                fits_beside = job.num_nodes <= extra
                assert fits_before or fits_beside
                if not fits_before:
                    extra -= job.num_nodes

    @given(queue=queue_strategy)
    @settings(max_examples=100, deadline=None)
    def test_empty_machine_priority_prefix_starts(self, queue):
        """On an idle machine the highest-priority fitting prefix starts."""
        pending = [pend(n, l, i) for i, (n, l) in enumerate(queue)]
        starts, _ = plan_backfill(pending, [], 16, now=0.0)
        if pending and pending[0].num_nodes <= 16:
            assert pending[0] in starts


class TestPolicyProperties:
    requests = st.builds(
        lambda lo, span, pref_frac: ResizeRequest(
            min_procs=lo,
            max_procs=lo + span,
            factor=2,
            preferred=None if pref_frac is None else min(lo + span, max(lo, pref_frac)),
        ),
        lo=st.integers(1, 4),
        span=st.integers(0, 28),
        pref_frac=st.one_of(st.none(), st.integers(1, 32)),
    )

    @given(
        request=requests,
        current=st.integers(1, 32),
        free=st.integers(0, 64),
        pending_sizes=st.lists(st.integers(1, 32), max_size=5),
    )
    @settings(max_examples=300, deadline=None)
    def test_decisions_always_legal(self, request, current, free, pending_sizes):
        """Whatever the inputs, decisions stay within physical limits."""
        job = Job(name="x", num_nodes=current, time_limit=10.0)
        job.job_id = 1
        view = PolicyView(
            free_nodes=free,
            pending=tuple(pend(n, 10.0, 10 + i) for i, n in enumerate(pending_sizes)),
        )
        for cfg in (
            PolicyConfig(),
            PolicyConfig(shrink_mode="deepest"),
            PolicyConfig(expand_with_pending=True, shrink_beneficiary="any"),
        ):
            decision = ReconfigurationPolicy(cfg).decide(job, request, view)
            if decision.action is ResizeAction.EXPAND:
                assert decision.target_procs > current
                assert decision.target_procs <= request.max_procs
                # An expansion never claims more nodes than are free.
                assert decision.target_procs - current <= free
            elif decision.action is ResizeAction.SHRINK:
                assert decision.target_procs < current
                assert decision.target_procs >= request.min_procs
                # Factor-2 reachability.
                assert decision.target_procs in request.shrink_sizes(current)
            else:
                assert decision.target_procs == current


# -- differential legacy-vs-incremental scheduler fuzzing ----------------------
#
# PR 4 proved the incremental O(k log n) scheduler byte-identical to the
# legacy resort-per-pass one on three pinned golden traces.  The suite
# below fuzzes that equivalence proof: random job traces — sizes, limits,
# moldable flags, mid-run cancels, node failures with repairs — are
# replayed through both scheduler modes, and the *entire canonical trace*
# (every start, backfill pick, requeue, resize decision and allocation
# change, in order) must match exactly.  Every replay also runs under the
# InvariantObserver, so the fuzz doubles as an invariant hunt.

from repro.cluster import Machine
from repro.metrics.trace import canonical_lines
from repro.sim import Environment
from repro.sim.process import Interrupt
from repro.slurm import SlurmConfig, SlurmController
from repro.slurm.job import JobClass
from repro.testing import InvariantObserver, run_bounded

DIFF_NODES = 12
DIFF_HORIZON = 100_000.0


@dataclass(frozen=True)
class TraceJob:
    nodes: int
    runtime: float
    limit_factor: float
    gap: float  # arrival gap after the previous submission
    moldable: bool
    cancel_after: Optional[float]  # seconds after submission, or None


@dataclass(frozen=True)
class TraceFault:
    time: float
    node: int
    repair_after: Optional[float]


job_strategy = st.builds(
    TraceJob,
    nodes=st.integers(1, 8),
    runtime=st.floats(1.0, 300.0),
    limit_factor=st.floats(1.05, 3.0),
    gap=st.floats(0.0, 40.0),
    moldable=st.booleans(),
    cancel_after=st.one_of(st.none(), st.floats(0.0, 200.0)),
)

fault_strategy = st.builds(
    TraceFault,
    time=st.floats(0.0, 500.0),
    node=st.integers(0, DIFF_NODES - 1),
    repair_after=st.one_of(st.none(), st.floats(1.0, 300.0)),
)


def _replay_differential(jobs: List[TraceJob], faults: List[TraceFault],
                         incremental: bool) -> List[str]:
    """Replay a fuzzed trace through one scheduler mode; canonical lines."""
    env = Environment()
    machine = Machine(DIFF_NODES)
    ctl = SlurmController(
        env, machine, SlurmConfig(incremental_queue=incremental)
    )
    observer = InvariantObserver(controller=ctl)
    ctl.trace.subscribe(observer.on_event)
    runtimes = {}

    def execute(job):
        try:
            yield env.timeout(runtimes[job.job_id])
            ctl.finish_job(job)
        except Interrupt:
            return  # cancelled or requeued; the controller settled it

    def launcher(job):
        proc = env.process(execute(job), name=f"run-{job.job_id}")
        ctl.register_job_process(job, proc)

    ctl.launcher = launcher

    def canceller(job, delay):
        yield env.timeout(delay)
        if not job.is_terminal:
            ctl.cancel_job(job)

    def submitter():
        for spec in jobs:
            if spec.gap > 0:
                yield env.timeout(spec.gap)
            kwargs = {}
            if spec.moldable:
                kwargs = dict(
                    job_class=JobClass.MOLDABLE,
                    resize_request=ResizeRequest(
                        min_procs=1, max_procs=spec.nodes
                    ),
                )
            job = ctl.submit(
                Job(
                    name=f"fz-{spec.nodes}n",
                    num_nodes=spec.nodes,
                    time_limit=spec.runtime * spec.limit_factor,
                    **kwargs,
                )
            )
            runtimes[job.job_id] = spec.runtime
            if spec.cancel_after is not None:
                env.process(canceller(job, spec.cancel_after))

    def fault_driver():
        for fault in sorted(faults, key=lambda f: f.time):
            if fault.time > env.now:
                yield env.timeout(fault.time - env.now)
            node = machine.nodes[fault.node]
            from repro.cluster.node import NodeState

            if node.state is not NodeState.DOWN:
                ctl.fail_node(fault.node)
                if fault.repair_after is not None:
                    env.process(repairer(fault.node, fault.repair_after))

    def repairer(idx, delay):
        yield env.timeout(delay)
        from repro.cluster.node import NodeState

        if machine.nodes[idx].state is NodeState.DOWN:
            ctl.recover_node(idx)

    env.process(submitter(), name="submitter")
    env.process(fault_driver(), name="faults")
    run_bounded(env, until=DIFF_HORIZON, max_events=500_000)
    assert observer.verify_final() > 0
    return canonical_lines(ctl.trace)


class TestDifferentialSchedulerEquivalence:
    @given(jobs=st.lists(job_strategy, min_size=1, max_size=18))
    @settings(max_examples=40, deadline=None)
    def test_identical_traces_without_faults(self, jobs):
        legacy = _replay_differential(jobs, [], incremental=False)
        incremental = _replay_differential(jobs, [], incremental=True)
        assert legacy == incremental

    @given(
        jobs=st.lists(job_strategy, min_size=1, max_size=14),
        faults=st.lists(fault_strategy, max_size=4),
    )
    @settings(max_examples=40, deadline=None)
    def test_identical_traces_with_faults(self, jobs, faults):
        legacy = _replay_differential(jobs, faults, incremental=False)
        incremental = _replay_differential(jobs, faults, incremental=True)
        assert legacy == incremental
