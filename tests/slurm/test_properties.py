"""Property-based tests on the scheduling and policy components."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ResizeAction, ResizeRequest
from repro.slurm import Job, PolicyConfig, PolicyView, ReconfigurationPolicy, plan_backfill


def pend(nodes, limit, jid, submit=0.0):
    job = Job(name=f"p{jid}", num_nodes=nodes, time_limit=limit)
    job.job_id = jid
    job.submit_time = submit
    return job


def run(nodes, start, limit, jid):
    job = Job(name=f"r{jid}", num_nodes=nodes, time_limit=limit)
    job.job_id = jid
    job.start_time = start
    # Running jobs hold their nodes; the planner counts the held set.
    job.nodes = tuple(range(1000 * jid, 1000 * jid + nodes))
    return job


queue_strategy = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=16),  # nodes
        st.floats(min_value=1.0, max_value=500.0),  # limit
    ),
    min_size=0,
    max_size=20,
)

running_strategy = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=8),
        st.floats(min_value=1.0, max_value=200.0),
    ),
    min_size=0,
    max_size=8,
)


class TestBackfillProperties:
    @given(queue=queue_strategy, running=running_strategy, total=st.integers(8, 32))
    @settings(max_examples=150, deadline=None)
    def test_never_overallocates(self, queue, running, total):
        running_jobs = [run(n, 0.0, l, 100 + i) for i, (n, l) in enumerate(running)]
        used = sum(j.num_nodes for j in running_jobs)
        free = max(0, total - used)
        pending = [pend(n, l, i) for i, (n, l) in enumerate(queue)]
        starts, _ = plan_backfill(pending, running_jobs, free, now=0.0)
        assert sum(j.num_nodes for j in starts) <= free
        # No job started twice.
        assert len({j.job_id for j in starts}) == len(starts)

    @given(queue=queue_strategy, running=running_strategy, total=st.integers(8, 32))
    @settings(max_examples=150, deadline=None)
    def test_backfill_does_not_delay_reservation(self, queue, running, total):
        """Backfilled jobs fit before the shadow or beside the reservation."""
        running_jobs = [run(n, 0.0, l, 100 + i) for i, (n, l) in enumerate(running)]
        used = sum(j.num_nodes for j in running_jobs)
        free = max(0, total - used)
        pending = [pend(n, l, i) for i, (n, l) in enumerate(queue)]
        starts, reservation = plan_backfill(pending, running_jobs, free, now=0.0)
        if reservation is None:
            return
        started = {j.job_id for j in starts}
        blocked_idx = pending.index(reservation.job)
        # Phase-1 starts (before the blocked job) are unconstrained; the
        # backfilled ones (after it) must respect the reservation.
        extra = reservation.extra_nodes
        for job in pending[blocked_idx + 1 :]:
            if job.job_id in started:
                fits_before = job.time_limit <= reservation.shadow_time
                fits_beside = job.num_nodes <= extra
                assert fits_before or fits_beside
                if not fits_before:
                    extra -= job.num_nodes

    @given(queue=queue_strategy)
    @settings(max_examples=100, deadline=None)
    def test_empty_machine_priority_prefix_starts(self, queue):
        """On an idle machine the highest-priority fitting prefix starts."""
        pending = [pend(n, l, i) for i, (n, l) in enumerate(queue)]
        starts, _ = plan_backfill(pending, [], 16, now=0.0)
        if pending and pending[0].num_nodes <= 16:
            assert pending[0] in starts


class TestPolicyProperties:
    requests = st.builds(
        lambda lo, span, pref_frac: ResizeRequest(
            min_procs=lo,
            max_procs=lo + span,
            factor=2,
            preferred=None if pref_frac is None else min(lo + span, max(lo, pref_frac)),
        ),
        lo=st.integers(1, 4),
        span=st.integers(0, 28),
        pref_frac=st.one_of(st.none(), st.integers(1, 32)),
    )

    @given(
        request=requests,
        current=st.integers(1, 32),
        free=st.integers(0, 64),
        pending_sizes=st.lists(st.integers(1, 32), max_size=5),
    )
    @settings(max_examples=300, deadline=None)
    def test_decisions_always_legal(self, request, current, free, pending_sizes):
        """Whatever the inputs, decisions stay within physical limits."""
        job = Job(name="x", num_nodes=current, time_limit=10.0)
        job.job_id = 1
        view = PolicyView(
            free_nodes=free,
            pending=tuple(pend(n, 10.0, 10 + i) for i, n in enumerate(pending_sizes)),
        )
        for cfg in (
            PolicyConfig(),
            PolicyConfig(shrink_mode="deepest"),
            PolicyConfig(expand_with_pending=True, shrink_beneficiary="any"),
        ):
            decision = ReconfigurationPolicy(cfg).decide(job, request, view)
            if decision.action is ResizeAction.EXPAND:
                assert decision.target_procs > current
                assert decision.target_procs <= request.max_procs
                # An expansion never claims more nodes than are free.
                assert decision.target_procs - current <= free
            elif decision.action is ResizeAction.SHRINK:
                assert decision.target_procs < current
                assert decision.target_procs >= request.min_procs
                # Factor-2 reachability.
                assert decision.target_procs in request.shrink_sizes(current)
            else:
                assert decision.target_procs == current
