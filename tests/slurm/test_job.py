"""Tests for the job descriptor and its state machine."""

import pytest

from repro.core import ResizeRequest
from repro.errors import JobStateError
from repro.slurm import Job, JobClass, JobState, make_resizer


def make_job(**kw):
    defaults = dict(name="j", num_nodes=4, time_limit=100.0)
    defaults.update(kw)
    return Job(**defaults)


def test_job_validation():
    with pytest.raises(JobStateError):
        make_job(num_nodes=0)
    with pytest.raises(JobStateError):
        make_job(time_limit=0)


def test_flexible_job_requires_request():
    with pytest.raises(JobStateError):
        make_job(job_class=JobClass.MALLEABLE)
    job = make_job(
        job_class=JobClass.MALLEABLE,
        resize_request=ResizeRequest(min_procs=1, max_procs=8),
    )
    assert job.is_flexible


def test_job_class_flexibility():
    assert not JobClass.RIGID.is_flexible
    assert not JobClass.MOLDABLE.is_flexible
    assert JobClass.MALLEABLE.is_flexible
    assert JobClass.EVOLVING.is_flexible


def test_legal_lifecycle():
    job = make_job()
    job.transition(JobState.RUNNING)
    job.transition(JobState.COMPLETING)
    job.transition(JobState.COMPLETED)
    assert job.is_terminal


def test_illegal_transition_rejected():
    job = make_job()
    with pytest.raises(JobStateError):
        job.transition(JobState.COMPLETED)  # PENDING -> COMPLETED is illegal


def test_terminal_states_frozen():
    job = make_job()
    job.transition(JobState.CANCELLED)
    with pytest.raises(JobStateError):
        job.transition(JobState.RUNNING)


def test_record_resize_tracks_history():
    job = make_job(num_nodes=8)
    job.record_resize(10.0, 4)
    job.record_resize(20.0, 16)
    assert job.num_nodes == 16
    assert job.resizes == [(10.0, 8, 4), (20.0, 4, 16)]
    assert job.submitted_nodes == 8


def test_paper_metrics():
    job = make_job()
    job.submit_time, job.start_time, job.end_time = 5.0, 15.0, 115.0
    assert job.wait_time == 10.0
    assert job.execution_time == 100.0
    assert job.completion_time == 110.0


def test_metrics_require_timestamps():
    job = make_job()
    with pytest.raises(JobStateError):
        _ = job.wait_time
    with pytest.raises(JobStateError):
        _ = job.execution_time
    with pytest.raises(JobStateError):
        _ = job.expected_end


def test_expected_end_uses_limit():
    job = make_job(time_limit=50.0)
    job.start_time = 100.0
    assert job.expected_end == 150.0


def test_make_resizer_properties():
    parent = make_job(num_nodes=4)
    parent.job_id = 7
    rj = make_resizer(parent, extra_nodes=4)
    assert rj.is_resizer
    assert rj.num_nodes == 4
    assert rj.parent_id == 7
    assert rj.dependency == 7
    assert rj.priority_boost == float("inf")


def test_make_resizer_validation():
    parent = make_job()
    with pytest.raises(JobStateError):
        make_resizer(parent, extra_nodes=0)
