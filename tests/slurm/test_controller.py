"""Integration tests for the Slurm controller and the resize protocol."""

import pytest

from repro.cluster import Machine
from repro.core import ResizeAction, ResizeRequest
from repro.errors import SchedulerError
from repro.metrics import EventKind
from repro.sim import Environment
from repro.slurm import (
    Job,
    JobClass,
    JobState,
    SlurmConfig,
    SlurmController,
    expand_protocol,
    shrink_protocol,
)
from repro.testing import run_bounded


def make_setup(nodes=16):
    env = Environment()
    machine = Machine(nodes)
    ctl = SlurmController(env, machine)
    return env, machine, ctl


def rigid(nodes, limit=100.0, name="job"):
    return Job(name=name, num_nodes=nodes, time_limit=limit)


def malleable(nodes, limit=100.0, name="flex", **req):
    defaults = dict(min_procs=1, max_procs=16)
    defaults.update(req)
    return Job(
        name=name,
        num_nodes=nodes,
        time_limit=limit,
        job_class=JobClass.MALLEABLE,
        resize_request=ResizeRequest(**defaults),
    )


class TestSubmissionAndDispatch:
    def test_submit_assigns_id_and_time(self):
        env, _, ctl = make_setup()
        env.run(until=5.0)
        job = ctl.submit(rigid(4))
        assert job.job_id == 1
        assert job.submit_time == 5.0
        assert job.state is JobState.PENDING

    def test_double_submit_rejected(self):
        env, _, ctl = make_setup()
        job = ctl.submit(rigid(4))
        with pytest.raises(SchedulerError):
            ctl.submit(job)

    def test_job_starts_when_nodes_available(self):
        env, machine, ctl = make_setup()
        job = ctl.submit(rigid(4))
        env.run(until=0.1)
        assert job.state is JobState.RUNNING
        assert job.nodes == (0, 1, 2, 3)
        assert machine.used_count == 4

    def test_job_waits_when_cluster_full(self):
        env, _, ctl = make_setup(nodes=8)
        first = ctl.submit(rigid(8, limit=50.0))
        second = ctl.submit(rigid(4))
        env.run(until=1.0)
        assert first.is_running
        assert second.is_pending

    def test_finish_releases_and_starts_next(self):
        env, machine, ctl = make_setup(nodes=8)
        first = ctl.submit(rigid(8, limit=50.0))
        second = ctl.submit(rigid(4))

        def finisher():
            yield env.timeout(10.0)
            ctl.finish_job(first)

        env.process(finisher())
        env.run(until=20.0)
        assert first.state is JobState.COMPLETED
        assert first.end_time == 10.0
        assert second.is_running
        assert second.start_time == 10.0
        assert machine.used_count == 4

    def test_launcher_hook_called_for_normal_jobs(self):
        env, _, ctl = make_setup()
        launched = []
        ctl.launcher = lambda job: launched.append(job.name)
        ctl.submit(rigid(2, name="a"))
        ctl.submit(rigid(2, name="b"))
        env.run(until=0.1)
        assert launched == ["a", "b"]

    def test_started_event_fires(self):
        env, _, ctl = make_setup()
        job = ctl.submit(rigid(2))
        got = []

        def waiter():
            j = yield ctl.started_event(job)
            got.append((env.now, j.job_id))

        env.process(waiter())
        env.run(until=1.0)
        assert got == [(0.0, job.job_id)]

    def test_finish_unstarted_job_rejected(self):
        env, _, ctl = make_setup(nodes=2)
        blocker = ctl.submit(rigid(2, limit=100.0))
        waiting = ctl.submit(rigid(2))
        env.run(until=0.1)
        with pytest.raises(SchedulerError):
            ctl.finish_job(waiting)

    def test_cancel_pending_job(self):
        env, _, ctl = make_setup(nodes=2)
        ctl.submit(rigid(2, limit=100.0))
        waiting = ctl.submit(rigid(2))
        env.run(until=0.1)
        ctl.cancel_job(waiting)
        assert waiting.state is JobState.CANCELLED
        assert waiting not in ctl.pending_jobs()

    def test_cancel_running_job_releases_nodes(self):
        env, machine, ctl = make_setup()
        job = ctl.submit(rigid(4))
        env.run(until=0.1)
        ctl.cancel_job(job)
        assert machine.used_count == 0
        assert job.state is JobState.CANCELLED

    def test_all_done(self):
        env, _, ctl = make_setup()
        job = ctl.submit(rigid(4))
        assert not ctl.all_done()
        env.run(until=0.1)
        ctl.finish_job(job)
        assert ctl.all_done()

    def test_get_job_lookup(self):
        env, _, ctl = make_setup()
        job = ctl.submit(rigid(4))
        assert ctl.get_job(job.job_id) is job
        with pytest.raises(SchedulerError):
            ctl.get_job(999)

    def test_trace_records_lifecycle(self):
        env, _, ctl = make_setup()
        job = ctl.submit(rigid(4))
        env.run(until=0.1)
        ctl.finish_job(job)
        kinds = [e.kind for e in ctl.trace.of_job(job.job_id)]
        assert EventKind.JOB_SUBMIT in kinds
        assert EventKind.JOB_START in kinds
        assert EventKind.JOB_END in kinds


class TestDependencies:
    def test_dependent_job_waits_for_parent_start(self):
        env, _, ctl = make_setup(nodes=8)
        parent = ctl.submit(rigid(9, limit=50.0))  # cannot start: too big
        child = rigid(2)
        child.dependency = parent.job_id
        ctl.submit(child)
        env.run(until=1.0)
        # Parent pending -> child must not start even though nodes are free.
        assert child.is_pending


class TestExpandProtocol:
    def test_expand_success_transfers_nodes(self):
        env, machine, ctl = make_setup(nodes=16)
        job = ctl.submit(malleable(4))
        env.run(until=0.1)
        results = []

        def run_expand():
            new_nodes = yield from expand_protocol(ctl, job, target_nodes=8)
            results.append(new_nodes)

        env.process(run_expand())
        env.run(until=5.0)
        assert results == [(0, 1, 2, 3, 4, 5, 6, 7)]
        assert job.num_nodes == 8
        assert machine.nodes_of(job.job_id) == (0, 1, 2, 3, 4, 5, 6, 7)
        # The resizer job came and went.
        resizers = [j for j in ctl.finished if j.is_resizer]
        assert len(resizers) == 1
        assert resizers[0].state is JobState.CANCELLED

    def test_expand_reuses_original_nodes(self):
        """Expanding must keep the original allocation (Section III)."""
        env, machine, ctl = make_setup(nodes=16)
        job = ctl.submit(malleable(4))
        env.run(until=0.1)
        original = set(job.nodes)

        def run_expand():
            yield from expand_protocol(ctl, job, target_nodes=8)

        env.process(run_expand())
        env.run(until=5.0)
        assert original <= set(job.nodes)

    def test_expand_times_out_when_nodes_busy(self):
        env, machine, ctl = make_setup(nodes=8)
        job = ctl.submit(malleable(4))
        blocker = ctl.submit(rigid(4, limit=1000.0))
        env.run(until=0.1)
        results = []

        def run_expand():
            out = yield from expand_protocol(ctl, job, target_nodes=8, timeout=10.0)
            results.append(out)

        env.process(run_expand())
        env.run(until=30.0)
        assert results == [None]
        assert job.num_nodes == 4
        aborts = ctl.trace.of_kind(EventKind.RESIZE_ABORT)
        assert len(aborts) == 1
        # The resizer was cancelled and no stray allocation remains.
        assert machine.used_count == 8

    def test_expand_invalid_target_rejected(self):
        env, _, ctl = make_setup()
        job = ctl.submit(malleable(4))
        env.run(until=0.1)
        with pytest.raises(ValueError):
            list(expand_protocol(ctl, job, target_nodes=4))

    def test_expand_records_resize_history(self):
        env, _, ctl = make_setup()
        job = ctl.submit(malleable(4))
        env.run(until=0.1)

        def run_expand():
            yield from expand_protocol(ctl, job, target_nodes=16)

        env.process(run_expand())
        env.run(until=5.0)
        assert job.resizes == [(pytest.approx(0.1, abs=0.2), 4, 16)]


class TestShrink:
    def test_shrink_releases_highest_nodes(self):
        env, machine, ctl = make_setup()
        job = ctl.submit(malleable(8))
        env.run(until=0.1)
        released = shrink_protocol(ctl, job, target_nodes=2)
        assert released == (2, 3, 4, 5, 6, 7)
        assert job.num_nodes == 2
        assert job.nodes == (0, 1)

    def test_shrink_triggers_waiting_job_start(self):
        env, machine, ctl = make_setup(nodes=8)
        flex = ctl.submit(malleable(8))
        queued = ctl.submit(rigid(4))
        env.run(until=0.1)
        assert queued.is_pending
        shrink_protocol(ctl, flex, target_nodes=4)
        env.run(until=0.2)
        assert queued.is_running

    def test_shrink_validation(self):
        env, _, ctl = make_setup()
        job = ctl.submit(malleable(8))
        env.run(until=0.1)
        with pytest.raises(SchedulerError):
            ctl.shrink_job(job, 8)
        with pytest.raises(SchedulerError):
            ctl.shrink_job(job, 0)


class TestCheckStatus:
    def test_check_status_requires_running_job(self):
        env, _, ctl = make_setup()
        job = malleable(4)
        ctl.submit(job)
        with pytest.raises(SchedulerError):
            ctl.check_status(job, job.resize_request)

    def test_check_status_expand_on_idle_cluster(self):
        env, _, ctl = make_setup(nodes=16)
        job = ctl.submit(malleable(4))
        env.run(until=0.1)
        d = ctl.check_status(job, job.resize_request)
        assert d.action is ResizeAction.EXPAND
        assert d.target_procs == 16

    def test_check_status_shrink_boosts_beneficiary(self):
        env, _, ctl = make_setup(nodes=8)
        flex = ctl.submit(malleable(8))
        queued = ctl.submit(rigid(6))
        env.run(until=0.1)
        d = ctl.check_status(flex, flex.resize_request)
        assert d.action is ResizeAction.SHRINK
        assert d.beneficiary_job_id == queued.job_id
        assert queued.priority_boost == float("inf")

    def test_check_status_records_decision(self):
        env, _, ctl = make_setup()
        job = ctl.submit(malleable(4))
        env.run(until=0.1)
        ctl.check_status(job, job.resize_request)
        decisions = ctl.trace.of_kind(EventKind.RESIZE_DECISION)
        assert len(decisions) == 1
        assert decisions[0]["action"] == "expand"

    def test_policy_view_excludes_resizers(self):
        env, _, ctl = make_setup(nodes=8)
        flex = ctl.submit(malleable(2))
        env.run(until=0.1)

        def run_expand():
            yield from expand_protocol(ctl, flex, target_nodes=4)

        env.process(run_expand())
        # Snapshot during the same timestamp window would show the resizer
        # in pending; policy views must filter it.
        view = ctl.policy_view()
        assert all(not p.is_resizer for p in view.pending)


class TestBackfillThreadRestart:
    """The sched/backfill thread must survive idle-then-burst workloads:
    it parks itself when the system drains and submit() restarts it.

    These tests drive the clock with :func:`repro.testing.run_bounded`
    instead of ``env.run``: the scenario exists precisely because the
    thread's park/restart logic once risked wedging, and a deterministic
    event budget turns any future regression into a crisp
    ``WedgedSimulation`` failure instead of a hung CI job.
    """

    #: Far above what these small scenarios need (a few hundred events),
    #: far below anything that would make a hang slow to report.
    EVENT_BUDGET = 20_000

    def _run(self, env, until):
        run_bounded(env, until=until, max_events=self.EVENT_BUDGET)

    def test_burst_during_sleep_window_reuses_thread(self):
        env, _, ctl = make_setup(nodes=8)
        first = ctl.submit(rigid(2, limit=50.0))
        self._run(env, until=5.0)
        ctl.finish_job(first)
        # The system is drained but the thread sleeps until t=30.  A
        # burst lands inside that window.
        blocker = ctl.submit(rigid(6, limit=100.0, name="blocker"))
        self._run(env, until=6.0)
        head = ctl.submit(rigid(8, limit=100.0, name="wide-head"))
        shorty = ctl.submit(rigid(2, limit=50.0, name="shorty"))
        self._run(env, until=31.0)
        # The event-driven FIFO pass stops at the wide head; only the
        # (still-alive) backfill thread's t=30 pass can start shorty.
        assert blocker.is_running
        assert head.is_pending
        assert shorty.is_running
        assert shorty.start_time == pytest.approx(30.0)

    def test_idle_then_burst_restarts_thread(self):
        env, _, ctl = make_setup(nodes=8)
        first = ctl.submit(rigid(2, limit=50.0))
        self._run(env, until=10.0)
        ctl.finish_job(first)
        # Drain well past several backfill intervals: the thread exits.
        self._run(env, until=200.0)
        assert ctl.all_done()
        assert ctl._backfill_thread_alive is False
        # Burst: blocker + wide head + a job only backfill can start.
        blocker = ctl.submit(rigid(6, limit=100.0, name="blocker"))
        assert ctl._backfill_thread_alive is True
        self._run(env, until=201.0)
        head = ctl.submit(rigid(8, limit=100.0, name="wide-head"))
        shorty = ctl.submit(rigid(2, limit=50.0, name="shorty"))
        self._run(env, until=231.0)
        assert blocker.is_running
        assert head.is_pending
        assert shorty.is_running
        # The restarted thread passed at t=200 and again at t=230.
        assert shorty.start_time == pytest.approx(230.0)
