"""Tests for the extension features: moldable submission, time limits,
evolving applications, and job-kill delivery."""

import pytest

from repro.apps import AppModel, LinearScalability, flexible_sleep
from repro.cluster import ClusterConfig
from repro.core import ResizeRequest
from repro.metrics import EventKind
from repro.runtime import RuntimeConfig, install_runtime_launcher
from repro.sim import Environment
from repro.slurm import Job, JobClass, JobState, SlurmConfig, SlurmController


def setup(nodes=16, **slurm_kw):
    env = Environment()
    cluster = ClusterConfig(num_nodes=nodes)
    machine = cluster.build_machine()
    ctl = SlurmController(env, machine, config=SlurmConfig(**slurm_kw))
    install_runtime_launcher(ctl, cluster)
    return env, cluster, machine, ctl


def app_of(steps=2, step_time=10.0, at=4, **kw):
    return flexible_sleep(step_time=step_time, at_procs=at, steps=steps, **kw)


class TestMoldableSubmission:
    """The paper's future work: submission with a range of node counts."""

    def moldable_job(self, nodes, min_procs=1, name="mold"):
        app = app_of(at=nodes)
        return Job(
            name=name,
            num_nodes=nodes,
            time_limit=10_000.0,
            job_class=JobClass.MOLDABLE,
            resize_request=ResizeRequest(min_procs=min_procs, max_procs=nodes),
            payload=app,
        )

    def test_moldable_starts_below_submitted_size(self):
        env, _, machine, ctl = setup(nodes=16)
        blocker = ctl.submit(
            Job(name="big", num_nodes=12, time_limit=1000.0, payload=app_of(at=12))
        )
        mold = ctl.submit(self.moldable_job(8))
        env.run(until=1.0)
        # Only 4 nodes free: the moldable job starts shrunk to 4.
        assert mold.is_running
        assert mold.num_nodes == 4

    def test_moldable_respects_min_procs(self):
        env, _, _, ctl = setup(nodes=16)
        ctl.submit(Job(name="big", num_nodes=14, time_limit=1000.0, payload=app_of(at=14)))
        mold = ctl.submit(self.moldable_job(8, min_procs=4))
        env.run(until=1.0)
        # 2 free < min 4: must wait.
        assert mold.is_pending

    def test_moldable_takes_full_size_when_available(self):
        env, _, _, ctl = setup(nodes=16)
        mold = ctl.submit(self.moldable_job(8))
        env.run(until=1.0)
        assert mold.num_nodes == 8

    def test_rigid_job_never_molded(self):
        env, _, _, ctl = setup(nodes=16)
        ctl.submit(Job(name="big", num_nodes=12, time_limit=1000.0, payload=app_of(at=12)))
        rigid = ctl.submit(Job(name="r", num_nodes=8, time_limit=100.0, payload=app_of(at=8)))
        env.run(until=1.0)
        assert rigid.is_pending

    def test_molded_start_preserves_submitted_size(self):
        """Regression: _moldable_fit overwrites num_nodes; the submitted
        size must survive on Job.submitted_nodes."""
        env, _, _, ctl = setup(nodes=16)
        ctl.submit(
            Job(name="big", num_nodes=12, time_limit=1000.0, payload=app_of(at=12))
        )
        mold = ctl.submit(self.moldable_job(8))
        env.run(until=1.0)
        assert mold.num_nodes == 4
        assert mold.submitted_nodes == 8

    def test_molded_job_grow_ceiling_is_submitted_size(self):
        """Regression: a job molded down at start must not later grow past
        the size the user submitted, even when the application's own
        max_procs is larger."""
        from repro.cluster import Machine
        from repro.core import ResizeAction
        from repro.slurm import SlurmController

        env = Environment()
        ctl = SlurmController(env, Machine(16))
        blocker = ctl.submit(Job(name="big", num_nodes=12, time_limit=1000.0))
        app_req = ResizeRequest(min_procs=1, max_procs=16)
        mold = ctl.submit(
            Job(
                name="m",
                num_nodes=8,
                time_limit=1000.0,
                job_class=JobClass.MALLEABLE,
                resize_request=app_req,
                moldable_start=True,
            )
        )
        env.run(until=1.0)
        assert mold.is_running and mold.num_nodes == 4
        ctl.finish_job(blocker)
        env.run(until=2.0)
        # Queue empty, 12 nodes free: the app's request would allow 16,
        # but the user only ever asked for 8.
        decision = ctl.check_status(mold, app_req)
        assert decision.action is ResizeAction.EXPAND
        assert decision.target_procs == 8


class TestTimeLimits:
    def test_overrunning_job_killed(self):
        env, _, machine, ctl = setup(nodes=8, enforce_time_limits=True)
        # 5 steps x 10 s = 50 s of work but only a 25 s limit.
        job = ctl.submit(
            Job(name="hog", num_nodes=4, time_limit=25.0, payload=app_of(steps=5, at=4))
        )
        env.run()
        assert job.state is JobState.TIMEOUT
        assert job.end_time == pytest.approx(25.0)
        assert machine.used_count == 0

    def test_compliant_job_unaffected(self):
        env, _, _, ctl = setup(nodes=8, enforce_time_limits=True)
        job = ctl.submit(
            Job(name="ok", num_nodes=4, time_limit=100.0, payload=app_of(steps=2, at=4))
        )
        env.run()
        assert job.state is JobState.COMPLETED
        assert job.end_time == pytest.approx(20.0)

    def test_kill_releases_nodes_for_waiting_job(self):
        env, _, _, ctl = setup(nodes=4, enforce_time_limits=True)
        hog = ctl.submit(
            Job(name="hog", num_nodes=4, time_limit=30.0, payload=app_of(steps=10, at=4))
        )
        waiter = ctl.submit(
            Job(name="w", num_nodes=4, time_limit=100.0, payload=app_of(steps=1, at=4))
        )
        env.run()
        assert hog.state is JobState.TIMEOUT
        assert waiter.state is JobState.COMPLETED
        assert waiter.start_time == pytest.approx(30.0)

    def test_resized_job_limit_rescaled(self):
        """A malleable job shrunk 16->4 gets 4x the remaining walltime."""
        env, cluster, _, ctl = setup(nodes=16, enforce_time_limits=True)
        app = app_of(steps=4, step_time=10.0, at=16, max_procs=16)
        flex = ctl.submit(
            Job(
                name="flex",
                num_nodes=16,
                time_limit=60.0,  # 40 s of work at 16 nodes, padded
                job_class=JobClass.MALLEABLE,
                resize_request=app.resize,
                payload=app,
            )
        )
        env.run(until=5.0)
        queued = ctl.submit(
            Job(name="q", num_nodes=12, time_limit=100.0, payload=app_of(at=12))
        )
        env.run()
        # The flexible job shrank (to let the 12-node job run) and its
        # steps became 4x longer; without limit rescaling it would be
        # killed.  It must complete.
        assert flex.state is JobState.COMPLETED
        assert len(flex.resizes) >= 1
        assert queued.state is JobState.COMPLETED


class TestEvolvingApplications:
    def test_phase_request_forces_growth(self):
        """An evolving app demands more nodes at a later stage."""
        env, cluster, _, ctl = setup(nodes=16)
        base = ResizeRequest(min_procs=2, max_procs=16, preferred=2)
        grow = ResizeRequest(min_procs=8, max_procs=16)
        app = AppModel(
            name="evolving",
            iterations=6,
            serial_step_time=40.0,
            state_bytes=0.0,
            scalability=LinearScalability(),
            resize=base,
            phase_requests={3: grow},
        )
        job = ctl.submit(
            Job(
                name="evolve",
                num_nodes=2,
                time_limit=10_000.0,
                job_class=JobClass.EVOLVING,
                resize_request=base,
                payload=app,
            )
        )
        env.run()
        assert job.state is JobState.COMPLETED
        # The stage-3 request (min 8 > current 2) triggered an expansion.
        sizes = [new for _, _, new in job.resizes]
        assert any(s >= 8 for s in sizes)

    def test_request_at_lookup(self):
        base = ResizeRequest(min_procs=1, max_procs=4)
        override = ResizeRequest(min_procs=2, max_procs=8)
        app = AppModel(
            name="t",
            iterations=5,
            serial_step_time=1.0,
            state_bytes=0.0,
            scalability=LinearScalability(),
            resize=base,
            phase_requests={2: override},
        )
        assert app.request_at(0) is base
        assert app.request_at(2) is override
        assert app.fresh_copy().request_at(2) is override


class TestCancelDelivery:
    def test_cancel_running_job_stops_its_process(self):
        env, _, machine, ctl = setup(nodes=8)
        job = ctl.submit(
            Job(name="victim", num_nodes=4, time_limit=1000.0, payload=app_of(steps=50, at=4))
        )
        env.run(until=5.0)
        ctl.cancel_job(job)
        env.run()
        assert job.state is JobState.CANCELLED
        assert machine.used_count == 0
        # No spurious completion event was recorded afterwards.
        ends = [e for e in ctl.trace.of_kind(EventKind.JOB_END) if e.job_id == job.job_id]
        assert ends == []
