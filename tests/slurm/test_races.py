"""Race and failure-injection tests for the resize machinery."""

import pytest

from repro.apps import flexible_sleep
from repro.cluster import ClusterConfig
from repro.metrics import EventKind
from repro.runtime import RuntimeConfig, install_runtime_launcher
from repro.sim import Environment
from repro.slurm import (
    Job,
    JobClass,
    JobState,
    SlurmController,
    expand_protocol,
)


def setup(nodes=16):
    env = Environment()
    cluster = ClusterConfig(num_nodes=nodes)
    machine = cluster.build_machine()
    ctl = SlurmController(env, machine)
    return env, cluster, machine, ctl


def malleable(nodes, steps=4, step_time=20.0, **req):
    app = flexible_sleep(step_time=step_time, at_procs=nodes, steps=steps, **req)
    return Job(
        name=f"flex{nodes}",
        num_nodes=nodes,
        time_limit=100_000.0,
        job_class=JobClass.MALLEABLE,
        resize_request=app.resize,
        payload=app,
    )


def test_concurrent_expansions_conflict_one_aborts():
    """Two jobs race to expand into the same 4 free nodes."""
    env, cluster, machine, ctl = setup(nodes=12)
    a = ctl.submit(malleable(4, max_procs=8))
    b = ctl.submit(malleable(4, max_procs=8))
    env.run(until=0.1)
    outcomes = []

    def expander(job):
        result = yield from expand_protocol(ctl, job, 8, timeout=5.0)
        outcomes.append((job.name, result is not None))

    # Both fire at the same instant, targeting the same free nodes.
    env.process(expander(a))
    env.process(expander(b))
    env.run(until=30.0)

    wins = [name for name, ok in outcomes if ok]
    losses = [name for name, ok in outcomes if not ok]
    assert len(wins) == 1 and len(losses) == 1
    # The winner owns 8 nodes; the loser still owns its original 4.
    winner = a if wins[0] == a.name else b
    loser = b if winner is a else a
    assert winner.num_nodes == 8
    assert loser.num_nodes == 4
    # Exactly one abort was recorded and no nodes leaked.
    assert len(ctl.trace.of_kind(EventKind.RESIZE_ABORT)) == 1
    assert machine.used_count == 12


def test_expansion_aborts_when_nodes_already_taken():
    """A rigid job that won the nodes first forces the expansion abort.

    (A *pending* rigid job would lose to the resizer — resizer jobs carry
    maximum priority per Section V-B — so the race is only lost once the
    nodes are actually allocated.)
    """
    env, cluster, machine, ctl = setup(nodes=8)
    flex = ctl.submit(malleable(4, max_procs=8))
    rigid = ctl.submit(Job(name="rigid", num_nodes=4, time_limit=1000.0))
    env.run(until=0.1)
    assert rigid.is_running  # holds the other 4 nodes
    results = []

    def expander():
        out = yield from expand_protocol(ctl, flex, 8, timeout=3.0)
        results.append(out)

    env.process(expander())
    env.run(until=10.0)
    assert results == [None]
    assert flex.num_nodes == 4


def test_runtime_survives_aborted_expansion():
    """A stale async expansion aborts; the job continues and completes.

    At its first reconfiguring point (t=0, empty queue, 4 idle nodes) the
    asynchronous check books an expansion for the next step.  Before that
    step boundary a rigid hog takes the idle nodes, so the applied
    decision is stale: the resizer job cannot start, the action aborts,
    and the malleable job must carry on unharmed.
    """
    env, cluster, machine, ctl = setup(nodes=8)
    install_runtime_launcher(
        ctl, cluster, RuntimeConfig(async_mode=True, resizer_timeout=2.0)
    )
    flex = ctl.submit(malleable(4, steps=3, step_time=30.0, max_procs=8))

    def hog_arrives():
        yield env.timeout(5.0)
        ctl.submit(
            Job(
                name="hog",
                num_nodes=4,
                time_limit=10_000.0,
                payload=flexible_sleep(step_time=1000.0, at_procs=4, steps=1),
            )
        )

    env.process(hog_arrives())
    env.run(until=500.0)
    assert flex.state is JobState.COMPLETED
    # The stale expansion was attempted and aborted.
    aborts = ctl.trace.of_kind(EventKind.RESIZE_ABORT)
    assert len(aborts) == 1
    assert flex.resizes == []


def test_shrink_then_immediate_completion_is_clean():
    """A job that shrinks on its last reconfiguring point still ends."""
    env, cluster, machine, ctl = setup(nodes=8)
    install_runtime_launcher(ctl, cluster)
    flex = ctl.submit(malleable(8, steps=2, step_time=10.0, max_procs=8, min_procs=1))
    env.run(until=1.0)
    # Make the queue non-empty so the last check shrinks the job.
    ctl.submit(Job(name="q", num_nodes=8, time_limit=100.0,
                   payload=flexible_sleep(step_time=1.0, at_procs=8, steps=1)))
    env.run()
    assert flex.state is JobState.COMPLETED
    assert machine.used_count == 0
    assert ctl.all_done()


def test_impossible_expansion_aborts_cleanly():
    """Expanding beyond the whole machine times out and cancels the RJ."""
    env, cluster, machine, ctl = setup(nodes=8)
    flex = ctl.submit(malleable(8, max_procs=8))
    env.run(until=0.1)
    results = []

    def expander():
        out = yield from expand_protocol(ctl, flex, 16, timeout=1.0)
        results.append(out)

    env.process(expander())
    env.run(until=10.0)
    assert results == [None]
    assert flex.num_nodes == 8
    assert machine.used_count == 8
    resizers = [j for j in ctl.finished if j.is_resizer]
    assert len(resizers) == 1
    assert resizers[0].state is JobState.CANCELLED
