"""Golden digests re-verified through the spill-to-disk streaming writer.

The golden suite (test_golden_traces.py) pins digests of *retained*
traces.  Million-job runs retain nothing — events go straight from
``Trace.record`` to a :class:`StreamingTraceWriter` — so these tests
prove the streaming path is digest-equivalent: the same headline
artifacts, spilled to disk line-by-line, must reproduce the committed
golden digests byte for byte, and a live run observed mid-flight must
spill exactly what the retained trace says happened.
"""

from __future__ import annotations

from repro.api import Session
from repro.api.observers import SessionObserver
from repro.metrics.stream import StreamingTraceWriter, read_trace_lines, stream_digest
from repro.metrics.trace import canonical_lines, text_digest

from tests.slurm.test_golden_traces import (
    FIG3_GOLDEN_COUNTS,
    GOLDEN_SEED,
    _load,
    fig3_golden_lines,
    table2_golden_lines,
)


def _spill_golden(tmp_path, name, lines_fn):
    """Replay a golden artifact's event stream through the writer."""
    path = tmp_path / f"{name}.spill"
    with StreamingTraceWriter(path) as writer:
        for line in lines_fn():
            if line.startswith("# "):
                writer.write_comment(line[2:])
            else:
                writer.write_line(line)
    return path


def test_fig3_golden_digest_via_stream(tmp_path):
    path = _spill_golden(tmp_path, "fig3", fig3_golden_lines)
    assert stream_digest(path) == _load("fig3")["digest"]
    assert len(read_trace_lines(path)) == _load("fig3")["events"]


def test_table2_golden_digest_via_stream(tmp_path):
    path = _spill_golden(tmp_path, "table2", table2_golden_lines)
    assert stream_digest(path) == _load("table2")["digest"]
    assert len(read_trace_lines(path)) == _load("table2")["events"]


class _StreamObserver(SessionObserver):
    """Forwards every raw trace event to a spill writer, live."""

    def __init__(self, writer: StreamingTraceWriter) -> None:
        self.writer = writer

    def on_event(self, event) -> None:
        self.writer.on_event(event)


def test_live_session_stream_matches_retained_trace(tmp_path):
    """A run observed mid-flight spills exactly the retained trace."""
    from repro.experiments.fig03_sync import run_fig03

    path = tmp_path / "live.spill"
    writer = StreamingTraceWriter(path)
    session = Session().with_seed(GOLDEN_SEED).observe(_StreamObserver(writer))
    result = run_fig03(
        job_counts=FIG3_GOLDEN_COUNTS[:1], seed=GOLDEN_SEED, session=session
    )
    writer.close()
    pair = result.rows[0].pair
    expected = canonical_lines(pair.fixed.trace) + canonical_lines(
        pair.flexible.trace
    )
    assert read_trace_lines(path) == expected
    # The digest of the spilled stream is exactly the digest of the
    # retained lines — streaming and retention are interchangeable.
    assert stream_digest(path) == text_digest("\n".join(expected))
