"""Tests for the sacct-style accounting layer."""

import pytest

from repro.slurm import Accounting, Job, JobClass, JobRecord, JobState


def finished(jid, submit=0.0, start=10.0, end=110.0, nodes=4, name=None):
    job = Job(name=name or f"j{jid}", num_nodes=nodes, time_limit=1e6)
    job.job_id = jid
    job.submit_time, job.start_time = submit, start
    job.transition(JobState.RUNNING)
    job.transition(JobState.COMPLETED)
    job.end_time = end
    return job


def test_record_basic_fields():
    rec = JobRecord.from_job(finished(1))
    assert rec.wait_time == 10.0
    assert rec.elapsed == 100.0
    assert rec.state == "completed"
    assert rec.node_seconds == 400.0  # 4 nodes x 100 s


def test_record_with_resizes_integrates_node_seconds():
    job = finished(1, start=0.0, end=100.0, nodes=8)
    # 8 nodes for 20 s, then 4 nodes for 30 s, then 16 for 50 s.
    job.resizes = [(20.0, 8, 4), (50.0, 4, 16)]
    job.num_nodes = 16
    rec = JobRecord.from_job(job)
    assert rec.node_seconds == pytest.approx(8 * 20 + 4 * 30 + 16 * 50)
    assert rec.resize_count == 2
    assert rec.submitted_nodes == 8
    assert rec.final_nodes == 16


def test_record_pending_job():
    job = Job(name="p", num_nodes=2, time_limit=10.0)
    job.job_id = 5
    job.submit_time = 3.0
    rec = JobRecord.from_job(job)
    assert rec.wait_time is None
    assert rec.elapsed is None
    assert rec.node_seconds == 0.0


def test_accounting_excludes_resizers_by_default():
    rj = finished(2)
    rj.is_resizer = True
    acct = Accounting([finished(1), rj])
    assert len(acct) == 1
    assert len(Accounting([finished(1), rj], include_resizers=True)) == 2


def test_accounting_aggregates():
    acct = Accounting([finished(1, start=10.0), finished(2, start=30.0, submit=0.0)])
    assert acct.mean_wait() == pytest.approx(20.0)
    assert acct.total_node_seconds() == pytest.approx(400.0 + 4 * 80.0)
    assert acct.total_resizes() == 0
    assert len(acct.completed()) == 2


def test_by_state():
    cancelled = Job(name="c", num_nodes=1, time_limit=5.0)
    cancelled.job_id = 3
    cancelled.submit_time = 0.0
    cancelled.transition(JobState.CANCELLED)
    acct = Accounting([finished(1), cancelled])
    assert len(acct.by_state(JobState.CANCELLED)) == 1
    assert len(acct.by_state(JobState.COMPLETED)) == 1


def test_sacct_table_renders():
    text = Accounting([finished(1, name="myjob")]).sacct_table()
    assert "myjob" in text
    assert "jobid" in text
    assert "4->4" in text


def test_mean_wait_empty():
    assert Accounting([]).mean_wait() == 0.0
