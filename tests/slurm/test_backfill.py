"""Tests for the EASY-backfill planner."""

from repro.slurm import Job, compute_shadow, plan_backfill


def pend(nodes, limit=100.0, jid=0, submit=0.0):
    job = Job(name=f"p{jid}", num_nodes=nodes, time_limit=limit)
    job.job_id = jid
    job.submit_time = submit
    return job


def run(nodes, start, limit, jid=100):
    job = Job(name=f"r{jid}", num_nodes=nodes, time_limit=limit)
    job.job_id = jid
    job.start_time = start
    # A genuinely running job holds its nodes; the planner counts the
    # held set (not the nominal size) when projecting future frees.
    job.nodes = tuple(range(1000 * jid, 1000 * jid + nodes))
    return job


def test_everything_fits():
    starts, res = plan_backfill([pend(2, jid=1), pend(3, jid=2)], [], 8, now=0.0)
    assert [j.job_id for j in starts] == [1, 2]
    assert res is None


def test_priority_order_respected():
    starts, res = plan_backfill([pend(5, jid=1), pend(5, jid=2)], [], 8, now=0.0)
    assert [j.job_id for j in starts] == [1]
    assert res is not None
    assert res.job.job_id == 2


def test_shadow_time_from_running_jobs():
    running = [run(4, start=0.0, limit=50.0), run(4, start=0.0, limit=90.0)]
    blocked = pend(6, jid=1)
    res = compute_shadow(blocked, free_now=2, running=running, now=10.0)
    # Needs 6: 2 free + 4 at t=50 -> shadow 50; at that point 6 free, 0 extra.
    assert res.shadow_time == 50.0
    assert res.extra_nodes == 0


def test_shadow_extra_nodes():
    running = [run(6, start=0.0, limit=50.0)]
    blocked = pend(4, jid=1)
    res = compute_shadow(blocked, free_now=2, running=running, now=0.0)
    assert res.shadow_time == 50.0
    assert res.extra_nodes == 4  # 8 available, 4 reserved


def test_shadow_impossible_job():
    res = compute_shadow(pend(100, jid=1), 2, [run(4, 0.0, 10.0)], now=0.0)
    assert res.shadow_time == float("inf")


def test_backfill_short_job_before_shadow():
    running = [run(6, start=0.0, limit=100.0)]
    queue = [pend(8, jid=1), pend(2, limit=50.0, jid=2)]
    starts, res = plan_backfill(queue, running, free_nodes=2, now=0.0)
    # Head needs 8 -> blocked until t=100. Job 2 fits in the 2 free nodes
    # and ends at t=50 <= shadow 100 -> backfilled.
    assert [j.job_id for j in starts] == [2]
    assert res.shadow_time == 100.0


def test_backfill_long_job_blocked_by_reservation():
    running = [run(6, start=0.0, limit=100.0)]
    queue = [pend(8, jid=1), pend(2, limit=500.0, jid=2)]
    starts, _ = plan_backfill(queue, running, free_nodes=2, now=0.0)
    # Job 2 would end after the shadow and the reservation leaves 0 extra
    # nodes (8 available at t=100, all reserved) -> cannot backfill.
    assert starts == []


def test_backfill_long_job_on_extra_nodes():
    running = [run(6, start=0.0, limit=100.0)]
    queue = [pend(6, jid=1), pend(2, limit=500.0, jid=2)]
    starts, res = plan_backfill(queue, running, free_nodes=2, now=0.0)
    # At shadow t=100: 8 nodes available, 6 reserved, 2 extra -> the long
    # 2-node job may run beside the reservation.
    assert [j.job_id for j in starts] == [2]
    assert res.extra_nodes == 2


def test_backfill_consumes_extra_nodes():
    running = [run(4, start=0.0, limit=100.0)]
    queue = [
        pend(6, jid=1),
        pend(2, limit=500.0, jid=2),
        pend(2, limit=500.0, jid=3),
    ]
    starts, _ = plan_backfill(queue, running, free_nodes=4, now=0.0)
    # 8 available at shadow, 6 reserved -> 2 extra. Job 2 takes both extra
    # nodes; job 3 (long) must not start even though 2 nodes are free now.
    assert [j.job_id for j in starts] == [2]


def test_backfill_respects_current_free_nodes():
    running = [run(7, start=0.0, limit=100.0)]
    queue = [pend(8, jid=1), pend(3, limit=10.0, jid=2)]
    starts, _ = plan_backfill(queue, running, free_nodes=1, now=0.0)
    # Only 1 node free now; the short job needs 3 -> nothing starts.
    assert starts == []


def test_multiple_immediate_starts_then_blocked():
    queue = [pend(3, jid=1), pend(3, jid=2), pend(9, jid=3), pend(2, limit=1.0, jid=4)]
    running = [run(2, start=0.0, limit=30.0)]
    starts, res = plan_backfill(queue, running, free_nodes=8, now=0.0)
    # Jobs 1,2 start (8->2 free). Job 3 blocked (needs 9). Job 4 (2 nodes,
    # ends t=1 < shadow) backfills.
    assert [j.job_id for j in starts] == [1, 2, 4]
    assert res.job.job_id == 3


def test_empty_queue():
    starts, res = plan_backfill([], [], 8, now=0.0)
    assert starts == [] and res is None


# -- mid-resize accounting regressions ----------------------------------------
#
# A running job mid-resize holds fewer nodes than num_nodes claims (a
# resizer detached for an expansion holds zero).  The shadow computation
# must count the *held* set: counting the nominal size tallies the
# detached nodes twice — once in free_now, once at the job's "end".


def detached(nodes, start, limit, jid):
    """A mid-expand job: started, nominal size ``nodes``, holds nothing."""
    job = run(nodes, start, limit, jid=jid)
    job.nodes = ()
    return job


def test_shadow_counts_held_nodes_not_nominal_size():
    # 8-node machine: holder owns 4 (ends t=50); a detached mid-expand job
    # nominally owns 2 but holds 0 ("ends" t=40); 4 nodes are free.
    # A blocked 6-node job truly has to wait for the holder: shadow t=50.
    mid = detached(2, start=0.0, limit=40.0, jid=100)
    holder = run(4, start=0.0, limit=50.0, jid=101)
    res = compute_shadow(pend(6, jid=1), free_now=4, running=[mid, holder], now=0.0)
    # Pre-fix: the detached job's phantom 2 nodes made available reach 6
    # at t=40 (shadow too early, extra inflated).
    assert res.shadow_time == 50.0
    assert res.extra_nodes == 2  # 4 free + 4 from holder - 6 reserved


def test_backfill_never_delays_reserved_head_past_shadow():
    """Regression: phase 2 must not park a long job on reserved nodes."""
    mid = detached(2, start=0.0, limit=40.0, jid=100)
    holder = run(4, start=0.0, limit=50.0, jid=101)
    # Head needs all 8 nodes: 4 free now + holder's 4 at t=50 (true
    # shadow), extra = 0.  The long backfill candidate must NOT start:
    # it would squat on free nodes the reservation counts on and delay
    # the head until t=500.
    queue = [pend(8, jid=1), pend(2, limit=500.0, jid=2)]
    starts, res = plan_backfill(queue, [mid, holder], free_nodes=4, now=0.0)
    assert res is not None and res.job.job_id == 1
    assert res.shadow_time == 50.0
    assert res.extra_nodes == 0
    # Pre-fix: extra was inflated to 2 by the detached job's phantom
    # nodes, so job 2 (2 nodes, 500 s) "fit beside" the reservation.
    assert starts == []


def test_backfill_short_job_still_allowed_next_to_detached():
    """Jobs ending by the (corrected) shadow still backfill normally."""
    mid = detached(2, start=0.0, limit=40.0, jid=100)
    holder = run(4, start=0.0, limit=50.0, jid=101)
    queue = [pend(8, jid=1), pend(2, limit=50.0, jid=2)]
    starts, _ = plan_backfill(queue, [mid, holder], free_nodes=4, now=0.0)
    assert [j.job_id for j in starts] == [2]


def test_plan_backfill_presorted_matches_unsorted():
    running = [
        run(2, start=0.0, limit=90.0, jid=100),
        run(3, start=0.0, limit=30.0, jid=101),
        run(2, start=0.0, limit=60.0, jid=102),
    ]
    queue = [
        pend(6, jid=1),
        pend(2, limit=25.0, jid=2),
        pend(1, limit=400.0, jid=3),
    ]
    baseline = plan_backfill(queue, running, free_nodes=1, now=0.0)
    presorted = sorted(running, key=lambda j: j.expected_end)
    fast = plan_backfill(
        queue, presorted, free_nodes=1, now=0.0, running_presorted=True
    )
    assert [j.job_id for j in baseline[0]] == [j.job_id for j in fast[0]]
    assert baseline[1].shadow_time == fast[1].shadow_time
    assert baseline[1].extra_nodes == fast[1].extra_nodes


def test_unreturnable_held_nodes_excluded_from_shadow():
    """A dead (or operator-drained) node a job still holds leaves the
    allocation at job end but never rejoins the pool; the shadow must
    not promise it to the blocked head job."""
    holder = run(4, start=0.0, limit=50.0, jid=100)
    dead = {holder.nodes[0]}  # one of its nodes will not come back
    blocked = pend(6, jid=1)
    honest = compute_shadow(
        blocked, free_now=2, running=[holder], now=10.0, unreturnable=dead
    )
    naive = compute_shadow(blocked, free_now=2, running=[holder], now=10.0)
    # Naively 2 + 4 = 6 fits at t=50; honestly only 2 + 3 = 5 ever exist.
    assert naive.shadow_time == 50.0
    assert honest.shadow_time == float("inf")


def test_unreturnable_shrinks_extra_nodes_budget():
    """Phase 2 must not park a long backfill job on nodes the (corrected)
    reservation counted on."""
    holder = run(4, start=0.0, limit=50.0, jid=100)
    holder2 = run(3, start=0.0, limit=50.0, jid=101)
    dead = {holder.nodes[0]}
    queue = [pend(8, jid=1), pend(1, limit=400.0, jid=2)]
    naive_starts, naive_res = plan_backfill(
        queue, [holder, holder2], free_nodes=2, now=0.0
    )
    honest_starts, honest_res = plan_backfill(
        queue, [holder, holder2], free_nodes=2, now=0.0, unreturnable=dead
    )
    # Naive: 2 + 4 + 3 = 9 by t=50, extra = 1 -> the long 1-node job
    # backfills beside the reservation.
    assert naive_res.extra_nodes == 1
    assert [j.job_id for j in naive_starts] == [2]
    # Honest: the dead node never rejoins; only 8 ever materialize,
    # extra = 0 -> the long job would delay the head and must wait.
    assert honest_res.extra_nodes == 0
    assert [j.job_id for j in honest_starts] == []
