"""Golden-trace determinism suite.

Pins the scheduler's observable behaviour — every (time, job, decision)
tuple it records — for the paper's headline artifacts, so performance
work on the scheduling hot path is provably behaviour-preserving:

* ``fig1`` — the analytic C/R-vs-DMR table (scheduler-free; pins the
  cost models the scheduler's decisions feed into);
* ``fig3`` — paired fixed/flexible FS workloads (10/25/50 jobs, the
  paper's seed) through the full submit/backfill/resize machinery;
* ``table2`` — paired real-application workloads (25/50 jobs).

The committed files under ``goldens/`` were captured from the
pre-refactor (re-sort-every-pass) scheduler after PR 4's correctness
fixes; ``test_incremental_matches_legacy_*`` additionally re-derives the
legacy order live, so the equivalence proof does not age as the seeds
move.  Regenerate after an *intentional* behaviour change with::

    PYTHONPATH=src python tests/slurm/test_golden_traces.py --regen
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.api import Session
from repro.metrics.trace import canonical_lines, text_digest

GOLDEN_DIR = Path(__file__).parent / "goldens"

#: Reduced workload sizes: the full artifacts (up to 400 jobs) would put
#: tens of seconds into the tier-1 suite; these sizes cover every code
#: path (backfill, shrink-for-pending, expand, resizer jobs) at ~1/10th
#: the cost.
FIG3_GOLDEN_COUNTS = (10, 25, 50)
TABLE2_GOLDEN_COUNTS = (25, 50)
GOLDEN_SEED = 2017


def _paired_lines(tag: str, num_jobs: int, pair) -> List[str]:
    lines: List[str] = []
    for rendition, result in (("fixed", pair.fixed), ("flexible", pair.flexible)):
        lines.append(f"# {tag} n={num_jobs} {rendition}")
        lines.extend(canonical_lines(result.trace))
    return lines


def fig1_golden_text() -> str:
    from repro.experiments.fig01_cr_vs_dmr import run_fig01

    return run_fig01().as_csv()


def fig3_golden_lines(session: Optional[Session] = None) -> List[str]:
    from repro.experiments.fig03_sync import run_fig03

    result = run_fig03(
        job_counts=FIG3_GOLDEN_COUNTS, seed=GOLDEN_SEED, session=session
    )
    lines: List[str] = []
    for row in result.rows:
        lines.extend(_paired_lines("fig3", row.num_jobs, row.pair))
    return lines


def table2_golden_lines(session: Optional[Session] = None) -> List[str]:
    from repro.experiments.fig10_12_realapps import run_realapps

    result = run_realapps(
        job_counts=TABLE2_GOLDEN_COUNTS, seed=GOLDEN_SEED, session=session
    )
    lines: List[str] = []
    for row in result.rows:
        lines.extend(_paired_lines("table2", row.num_jobs, row.pair))
    return lines


def _payload(name: str, lines: List[str]) -> dict:
    text = "\n".join(lines)
    return {
        "artifact": name,
        "seed": GOLDEN_SEED,
        "events": len(lines),
        "digest": text_digest(text),
        # Head/tail samples make a digest mismatch diagnosable without
        # regenerating anything.
        "head": lines[:5],
        "tail": lines[-5:],
    }


def _load(name: str) -> dict:
    with open(GOLDEN_DIR / f"{name}.json", encoding="utf-8") as fh:
        return json.load(fh)


def _assert_matches(name: str, lines: List[str]) -> None:
    golden = _load(name)
    current = _payload(name, lines)
    assert current["events"] == golden["events"], (
        f"{name}: event count drifted {golden['events']} -> "
        f"{current['events']}; head now {current['head']}"
    )
    assert current["digest"] == golden["digest"], (
        f"{name}: scheduling decisions changed "
        f"(head {current['head']}, tail {current['tail']}); if intentional, "
        f"regenerate with 'python tests/slurm/test_golden_traces.py --regen'"
    )


# -- golden-file pins ---------------------------------------------------------

def test_fig1_golden():
    _assert_matches("fig1", fig1_golden_text().splitlines())


def test_fig3_golden():
    _assert_matches("fig3", fig3_golden_lines())


def test_table2_golden():
    _assert_matches("table2", table2_golden_lines())


# -- telemetry transparency ---------------------------------------------------
#
# Span recording must be pure observation: a telemetry-enabled session
# has to reproduce the canonical traces byte-identically (the obs
# tentpole's golden guard).

def test_fig3_golden_unchanged_with_telemetry():
    session = Session().with_telemetry(correlation_id="golden")
    _assert_matches("fig3", fig3_golden_lines(session))


def test_table2_golden_unchanged_with_telemetry():
    session = Session().with_telemetry(correlation_id="golden")
    _assert_matches("table2", table2_golden_lines(session))


# -- legacy-vs-incremental live equivalence -----------------------------------
#
# The golden files pin today's behaviour; these tests re-derive the
# legacy (re-sort-every-pass) schedule live and diff the full tuple
# stream, so the incremental scheduler's equivalence proof does not age.

def _legacy_session() -> Session:
    from repro.slurm import SlurmConfig

    return Session().with_slurm(SlurmConfig(incremental_queue=False))


def test_incremental_matches_legacy_fig3():
    assert fig3_golden_lines() == fig3_golden_lines(_legacy_session())


def test_incremental_matches_legacy_table2():
    assert table2_golden_lines() == table2_golden_lines(_legacy_session())


# -- regeneration entry point -------------------------------------------------

def regenerate() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    for name, lines in (
        ("fig1", fig1_golden_text().splitlines()),
        ("fig3", fig3_golden_lines()),
        ("table2", table2_golden_lines()),
    ):
        payload = _payload(name, lines)
        with open(GOLDEN_DIR / f"{name}.json", "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
        print(f"goldens/{name}.json: {payload['events']} lines, "
              f"digest {payload['digest'][:12]}…")


if __name__ == "__main__":
    if "--regen" not in sys.argv:
        print(__doc__)
        raise SystemExit(2)
    regenerate()
