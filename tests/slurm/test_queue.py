"""Tests for the incremental pending queue (the scheduler hot path)."""

import random

from repro.cluster import Machine
from repro.metrics.trace import canonical_lines
from repro.sim import Environment
from repro.slurm import (
    Job,
    MultifactorConfig,
    MultifactorPriority,
    PendingQueue,
    SlurmConfig,
    SlurmController,
)


def job_of(jid, nodes, submit, boost=0.0):
    job = Job(name=f"j{jid}", num_nodes=nodes, time_limit=100.0)
    job.job_id = jid
    job.submit_time = submit
    job.priority_boost = boost
    return job


def engine(nodes=32, **cfg):
    return MultifactorPriority(MultifactorConfig(**cfg), nodes)


def random_jobs(rng, n, max_nodes=32):
    jobs = []
    for i in range(1, n + 1):
        boost = float("inf") if rng.random() < 0.1 else 0.0
        jobs.append(
            job_of(i, rng.randint(1, max_nodes), rng.uniform(0, 1000), boost)
        )
    return jobs


class TestOrderEquivalence:
    """queue.ordered() must equal the legacy sort for any job mix."""

    def test_matches_sort_queue_random(self):
        rng = random.Random(7)
        eng = engine()
        for trial in range(20):
            jobs = random_jobs(rng, 40)
            queue = PendingQueue(eng)
            for job in jobs:
                queue.add(job, now=job.submit_time)
            now = 2000.0
            assert queue.ordered(now) == eng.sort_queue(jobs, now)

    def test_pop_order_matches_sorted_order(self):
        rng = random.Random(13)
        eng = engine()
        jobs = random_jobs(rng, 30)
        queue = PendingQueue(eng)
        for job in jobs:
            queue.add(job, now=job.submit_time)
        expected = eng.sort_queue(jobs, 5000.0)
        popped = []
        while True:
            job = queue.pop_head(5000.0)
            if job is None:
                break
            popped.append(job)
        assert popped == expected

    def test_key_time_invariance_before_saturation(self):
        eng = engine()
        a = job_of(1, 4, submit=10.0)
        b = job_of(2, 9, submit=400.0)
        k_early = eng.sort_key(a, 500.0), eng.sort_key(b, 500.0)
        k_late = eng.sort_key(a, 90_000.0), eng.sort_key(b, 90_000.0)
        assert k_early == k_late


class TestIncrementalUpdates:
    def test_push_back_preserves_position(self):
        eng = engine()
        queue = PendingQueue(eng)
        jobs = [job_of(i, i, submit=float(i)) for i in range(1, 6)]
        for job in jobs:
            queue.add(job, now=job.submit_time)
        head = queue.pop_head(10.0)
        queue.push_back(head)
        assert queue.pop_head(10.0) is head

    def test_discard_and_contains(self):
        eng = engine()
        queue = PendingQueue(eng)
        job = job_of(1, 4, 0.0)
        queue.add(job, now=0.0)
        assert job in queue and len(queue) == 1
        queue.discard(job)
        assert job not in queue and len(queue) == 0
        assert queue.pop_head(1.0) is None
        queue.discard(job)  # idempotent

    def test_reprioritize_moves_boosted_job_to_front(self):
        eng = engine()
        queue = PendingQueue(eng)
        small = job_of(1, 1, submit=0.0)
        big = job_of(2, 32, submit=0.0)
        queue.add(small, now=0.0)
        queue.add(big, now=0.0)
        assert queue.ordered(1.0)[0] is big  # favor_big default
        small.priority_boost = float("inf")
        queue.reprioritize(small, now=1.0)
        assert queue.ordered(1.0)[0] is small
        # Re-boosting again must not corrupt the heap (dead-entry ties).
        queue.reprioritize(small, now=2.0)
        assert queue.pop_head(2.0) is small

    def test_forget_drops_checkout(self):
        eng = engine()
        queue = PendingQueue(eng)
        job = job_of(1, 2, 0.0)
        queue.add(job, 0.0)
        assert queue.pop_head(0.0) is job
        queue.forget(job)
        assert len(queue) == 0 and queue.pop_head(0.0) is None


class TestSaturationFallback:
    """Once a job's age factor saturates the static keys go stale; the
    queue must fall back to re-keying and still match the legacy sort."""

    def test_order_correct_across_saturation(self):
        # Tiny max_age so saturation is easy to reach: beyond it, an old
        # small job's priority freezes while a younger big job keeps
        # gaining and eventually overtakes it.
        eng = engine(max_age=100.0)
        old_small = job_of(1, 1, submit=0.0)
        young_big = job_of(2, 24, submit=90.0)
        queue = PendingQueue(eng)
        queue.add(old_small, now=0.0)
        queue.add(young_big, now=90.0)
        for now in (95.0, 120.0, 250.0, 1000.0):
            assert queue.ordered(now) == eng.sort_queue(
                [old_small, young_big], now
            ), f"diverged at now={now}"

    def test_rebuild_counts_tracked(self):
        eng = engine(max_age=10.0)
        queue = PendingQueue(eng)
        queue.add(job_of(1, 2, submit=0.0), now=0.0)
        queue.ordered(50.0)  # past saturation: forces a rebuild
        assert queue.stats.queue_rebuilds >= 1


class TestControllerModeEquivalence:
    """Legacy and incremental controllers must emit identical traces."""

    def _drive(self, incremental):
        env = Environment()
        ctl = SlurmController(
            env, Machine(16), SlurmConfig(incremental_queue=incremental)
        )
        rng = random.Random(42)
        jobs = []
        for i in range(30):
            job = Job(
                name=f"w{i}",
                num_nodes=rng.randint(1, 12),
                time_limit=rng.uniform(20.0, 200.0),
            )
            jobs.append(job)

        def arrivals():
            for job in jobs:
                yield env.timeout(rng.uniform(0.0, 10.0))
                ctl.submit(job)

        def reaper():
            # Finish running jobs after a deterministic pseudo-runtime.
            pending = set()
            while not ctl.all_done() or pending:
                for job in list(ctl.running.values()):
                    if job.job_id not in pending:
                        pending.add(job.job_id)
                        env.process(finisher(job))
                yield env.timeout(5.0)
                pending = {j for j in pending if j in ctl.running}

        def finisher(job):
            yield env.timeout(job.time_limit / 4.0)
            if job.job_id in ctl.running:
                ctl.finish_job(job)

        env.process(arrivals(), name="arrivals")
        env.process(reaper(), name="reaper")
        env.run(until=2000.0)
        return canonical_lines(ctl.trace)

    def test_traces_identical(self):
        assert self._drive(incremental=True) == self._drive(incremental=False)
