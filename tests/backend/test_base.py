"""Unit tests for the backend contract plumbing (specs, registry, drain)."""

import pickle

import pytest

from repro.backend.base import (
    AccountingRecord,
    BackendCapabilities,
    BackendSpec,
    ExecutionBackend,
    JobRequest,
    backend_class,
    backend_names,
    create_backend,
)
from repro.errors import BackendError, BackendUnavailableError
from repro.slurm.job import JobState


class TestJobRequest:
    def test_validation(self):
        with pytest.raises(BackendError):
            JobRequest(name="x", num_nodes=0, duration=1.0, time_limit=10.0)
        with pytest.raises(BackendError):
            JobRequest(name="x", num_nodes=1, duration=-1.0, time_limit=10.0)
        with pytest.raises(BackendError):
            JobRequest(name="x", num_nodes=1, duration=1.0, time_limit=0.0)

    def test_flexible_flag(self):
        rigid = JobRequest(name="x", num_nodes=2, duration=1.0, time_limit=10.0)
        flex = JobRequest(
            name="x", num_nodes=2, duration=1.0, time_limit=10.0,
            min_nodes=1, max_nodes=4,
        )
        assert not rigid.flexible
        assert flex.flexible


class TestBackendSpec:
    def test_of_sorts_options(self):
        spec = BackendSpec.of("slurm", poll_interval=0.5, partition="debug")
        assert spec.options == (("partition", "debug"), ("poll_interval", 0.5))
        assert spec.option("partition") == "debug"
        assert spec.option("missing", 42) == 42

    def test_picklable_and_hashable(self):
        spec = BackendSpec.of("slurm", poll_interval=0.5)
        assert pickle.loads(pickle.dumps(spec)) == spec
        assert hash(spec) == hash(BackendSpec.of("slurm", poll_interval=0.5))

    def test_as_dict(self):
        assert BackendSpec.of("sim").as_dict() == {"name": "sim"}
        assert BackendSpec.of("slurm", partition="p").as_dict() == {
            "name": "slurm",
            "partition": "p",
        }


class TestRegistry:
    def test_builtins_registered(self):
        names = backend_names()
        assert "sim" in names and "slurm" in names

    def test_unknown_backend(self):
        with pytest.raises(BackendUnavailableError, match="unknown backend"):
            backend_class("pbs")

    def test_create_backend_sim(self):
        backend = create_backend(BackendSpec.of("sim"))
        try:
            assert backend.name == "sim"
            assert backend.capabilities.supports_resize
        finally:
            backend.close()

    def test_driver_options_not_passed_to_constructor(self):
        # time_scale belongs to run_workload, not the backend constructor.
        backend = create_backend(BackendSpec.of("sim", time_scale=0.01))
        backend.close()


class _StuckBackend(ExecutionBackend):
    """A fake whose single job never terminates (drain must time out)."""

    name = "stuck"

    def __init__(self):
        self._now = 0.0

    @property
    def capabilities(self):
        return BackendCapabilities()

    def now(self):
        return self._now

    def wait(self, seconds):
        self._now += seconds

    def submit(self, request):
        return "1"

    def cancel(self, job_id):
        raise NotImplementedError

    def update_nodes(self, job_id, num_nodes):
        raise NotImplementedError

    def update_time_limit(self, job_id, time_limit):
        raise NotImplementedError

    def query_jobs(self, job_ids=None):
        return {
            "1": AccountingRecord(
                job_id="1", name="stuck", state=JobState.RUNNING, num_nodes=1
            )
        }


class TestDrain:
    def test_drain_times_out_with_live_jobs(self):
        backend = _StuckBackend()
        backend.submit(None)
        with pytest.raises(BackendError, match="drain timed out.*'1'"):
            backend.drain(timeout=5.0)
        # The clock advanced past the deadline, in poll_interval steps.
        assert backend.now() >= 5.0

    def test_event_subscription(self):
        backend = _StuckBackend()
        seen = []
        backend.subscribe(seen.append)
        backend._emit("job_submit", "1", nodes=2)
        assert len(seen) == 1
        assert seen[0].kind == "job_submit"
        assert seen[0].job_id == "1"
        assert seen[0].data == {"nodes": 2}


class TestAccountingRecord:
    def test_terminal_flag(self):
        done = AccountingRecord(
            job_id="1", name="a", state=JobState.COMPLETED, num_nodes=1
        )
        live = AccountingRecord(
            job_id="2", name="b", state=JobState.RUNNING, num_nodes=1
        )
        preempted = AccountingRecord(
            job_id="3", name="c", state=JobState.PREEMPTED, num_nodes=1
        )
        assert done.is_terminal
        assert preempted.is_terminal
        assert not live.is_terminal
