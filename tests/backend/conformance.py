"""The shared backend conformance scenarios.

Every scenario runs against *any* :class:`~repro.backend.base.
ExecutionBackend` and returns a **normalized outcome dict**: final
states and booleans only, never timestamps — the simulator answers in
virtual seconds and a real scheduler in jittery wall seconds, so raw
times can never agree, but the *shape* of what happened must.

``unit`` scales every duration onto the backend's clock: simulated
scenarios use comfortable tens of seconds (free to advance), wall-clock
scenarios compress to sub-second sleeps so CI stays fast.

Capability-gated scenarios (resize) return ``{"unsupported": True}`` on
backends that do not implement them; the sim-vs-real comparison records
these as *known* divergences instead of failures.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.backend.base import ExecutionBackend, JobRequest


def _request(name: str, unit: float, duration: float, limit: float, nodes: int = 1, **kw):
    return JobRequest(
        name=name,
        num_nodes=nodes,
        duration=duration * unit,
        time_limit=limit * unit,
        **kw,
    )


def scenario_submit_complete(backend: ExecutionBackend, unit: float) -> Dict:
    """A well-behaved job runs to completion within its limit."""
    job_id = backend.submit(_request("conform-ok", unit, duration=2, limit=600, nodes=2))
    records = backend.drain(timeout=600 * unit)
    record = records[job_id]
    return {
        "state": record.state.value,
        "started": record.start_time is not None,
        "accounted": record.end_time is not None,
        "nodes": record.num_nodes,
    }


def scenario_cancel(backend: ExecutionBackend, unit: float) -> Dict:
    """scancel on a running job yields CANCELLED, not COMPLETED."""
    job_id = backend.submit(_request("conform-cancel", unit, duration=600, limit=1200))
    backend.wait(1 * unit)
    backend.cancel(job_id)
    records = backend.drain(timeout=600 * unit)
    record = records[job_id]
    return {
        "state": record.state.value,
        "started": record.start_time is not None,
        "cut_short": record.elapsed is not None and record.elapsed < 300 * unit,
    }


def scenario_timeout(backend: ExecutionBackend, unit: float) -> Dict:
    """A job exceeding its walltime limit is killed as TIMEOUT."""
    job_id = backend.submit(_request("conform-late", unit, duration=600, limit=4))
    records = backend.drain(timeout=600 * unit)
    record = records[job_id]
    return {
        "state": record.state.value,
        "started": record.start_time is not None,
        "cut_short": record.elapsed is not None and record.elapsed < 300 * unit,
    }


def scenario_resize(backend: ExecutionBackend, unit: float) -> Dict:
    """Grow then shrink a running flexible job (where supported)."""
    if not backend.capabilities.supports_resize:
        return {"unsupported": True}
    job_id = backend.submit(
        _request(
            "conform-flex", unit, duration=600, limit=1200,
            nodes=2, min_nodes=1, max_nodes=4,
        )
    )
    backend.wait(1 * unit)
    backend.update_nodes(job_id, 4)
    grown = backend.query_jobs([job_id])[job_id].num_nodes
    backend.update_nodes(job_id, 2)
    shrunk = backend.query_jobs([job_id])[job_id].num_nodes
    backend.cancel(job_id)
    record = backend.drain(timeout=600 * unit)[job_id]
    return {
        "grown_to": grown,
        "shrunk_to": shrunk,
        "state": record.state.value,
    }


def scenario_drain(backend: ExecutionBackend, unit: float) -> Dict:
    """Draining a mixed batch settles every job, in one accounting view."""
    ids = [
        backend.submit(_request("conform-a", unit, duration=1, limit=600)),
        backend.submit(_request("conform-b", unit, duration=2, limit=600, nodes=2)),
        backend.submit(_request("conform-c", unit, duration=3, limit=600)),
    ]
    records = backend.drain(timeout=600 * unit)
    states = sorted(records[i].state.value for i in ids)
    return {
        "all_terminal": all(records[i].is_terminal for i in ids),
        "states": states,
        "batched": len(backend.query_jobs()) == 3,
    }


#: name -> scenario callable, the shared matrix.
SCENARIOS: Dict[str, Callable[[ExecutionBackend, float], Dict]] = {
    "submit_complete": scenario_submit_complete,
    "cancel": scenario_cancel,
    "timeout": scenario_timeout,
    "resize": scenario_resize,
    "drain": scenario_drain,
}


def run_matrix(
    make_backend: Callable[[], ExecutionBackend], unit: float
) -> Dict[str, Dict]:
    """Run every scenario on a fresh backend; return name -> outcome."""
    outcomes: Dict[str, Dict] = {}
    for name, scenario in SCENARIOS.items():
        backend = make_backend()
        try:
            outcomes[name] = scenario(backend, unit)
        finally:
            backend.close()
    return outcomes


def compare_matrices(
    reference: Dict[str, Dict], candidate: Dict[str, Dict]
) -> Tuple[Dict[str, Dict], list]:
    """Split into (shared identical outcomes, divergence descriptions).

    A scenario one side reports ``unsupported`` is a *capability gap*,
    listed separately from a genuine behavioural divergence.
    """
    divergences = []
    shared = {}
    for name in SCENARIOS:
        ref, cand = reference.get(name), candidate.get(name)
        if ref is None or cand is None:
            divergences.append({"scenario": name, "kind": "missing"})
        elif ref.get("unsupported") or cand.get("unsupported"):
            divergences.append(
                {"scenario": name, "kind": "capability",
                 "reference": ref, "candidate": cand}
            )
        elif ref != cand:
            divergences.append(
                {"scenario": name, "kind": "behaviour",
                 "reference": ref, "candidate": cand}
            )
        else:
            shared[name] = ref
    return shared, divergences
