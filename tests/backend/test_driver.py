"""run_workload and Session routing through the backend seam."""

import shlex
import sys

import pytest

from repro.api.observers import EventCounter
from repro.api.session import Session, SessionSpec
from repro.backend import BackendSpec, JobRequest, run_workload
from repro.backend.fake_slurmd import SPOOL_ENV
from repro.backend.sim import SimBackend
from repro.cluster.configs import ClusterConfig
from repro.errors import BackendError


def small_session():
    return Session(cluster=ClusterConfig(num_nodes=20)).with_seed(7)


def _fake(tool):
    return f"{shlex.quote(sys.executable)} -m repro.backend.fake_slurmd {tool}"


FAKE_COMMANDS = {
    tool: _fake(tool)
    for tool in ("sbatch", "scancel", "squeue", "sacct", "scontrol")
}


@pytest.fixture()
def fake_spool(tmp_path, monkeypatch):
    monkeypatch.setenv(SPOOL_ENV, str(tmp_path))
    return tmp_path


class TestDriverOverSim:
    def test_workload_runs_and_accounts(self):
        session = small_session()
        spec = session.fs_workload(5)
        backend = SimBackend(session)
        result = run_workload(backend, spec, flexible=False, session=session)
        backend.close()

        assert result.backend == "sim"
        assert result.accounting is not None and len(result.accounting) == 5
        assert result.summary.num_jobs == 5
        assert result.makespan > 0
        assert all(j.is_terminal for j in result.jobs)
        assert all(j.end_time is not None for j in result.jobs)

    def test_observers_see_synthetic_trace(self):
        session = small_session()
        spec = session.fs_workload(4)
        counter = EventCounter()
        observed = session.observe(counter)
        backend = SimBackend(session)
        run_workload(backend, spec, flexible=False, session=observed)
        backend.close()

        assert counter.submits == 4
        assert counter.starts == 4
        assert counter.completions == 4
        assert counter.raw_events > 8  # plus alloc changes

    def test_time_scale_must_be_positive(self):
        session = small_session()
        backend = SimBackend(session)
        with pytest.raises(ValueError, match="time_scale"):
            run_workload(backend, session.fs_workload(2), time_scale=0.0)
        backend.close()


class TestSessionRouting:
    def test_with_backend_name_and_spec(self):
        session = Session().with_backend("slurm", poll_interval=0.5)
        assert session.backend == BackendSpec.of("slurm", poll_interval=0.5)
        spec = BackendSpec.of("sim")
        assert Session().with_backend(spec).backend is spec
        with pytest.raises(ValueError):
            Session().with_backend(spec, extra=1)

    def test_spec_round_trip_carries_backend(self):
        session = Session().with_backend("slurm", poll_interval=0.5)
        spec = session.spec()
        assert isinstance(spec, SessionSpec)
        rebuilt = spec.build()
        assert rebuilt.backend == session.backend

    def test_build_refuses_non_sim_backend(self):
        with pytest.raises(BackendError, match="cannot build"):
            Session().with_backend("slurm").build()

    def test_default_and_sim_backend_build_normally(self):
        Session(cluster=ClusterConfig(num_nodes=4)).build()
        Session(cluster=ClusterConfig(num_nodes=4)).with_backend("sim").build()

    def test_run_routes_through_slurm_backend(self, fake_spool, monkeypatch):
        for tool, command in FAKE_COMMANDS.items():
            monkeypatch.setenv(f"REPRO_SLURM_{tool.upper()}", command)
        session = small_session().with_backend(
            "slurm", poll_interval=0.05, time_scale=0.002
        )
        spec = session.fs_workload(3)
        result = session.run(spec, flexible=False, max_sim_time=60.0)
        assert result.backend == "slurm"
        assert result.summary.num_jobs == 3
        assert all(j.state.value == "completed" for j in result.jobs)
        assert result.accounting is not None and len(result.accounting) == 3

    def test_execution_backend_instantiates_configured(self):
        backend = small_session().execution_backend()
        try:
            assert backend.name == "sim"
        finally:
            backend.close()
