"""Unit tests for the hermetic fake Slurm CLI (in-process, no subprocess)."""

import time

import pytest

from repro.backend import fake_slurmd
from repro.backend.fake_slurmd import SPOOL_ENV, main, parse_timelimit


@pytest.fixture()
def spool(tmp_path, monkeypatch):
    monkeypatch.setenv(SPOOL_ENV, str(tmp_path))
    return tmp_path


def sbatch(*args):
    return main(["sbatch", *args])


class TestParseTimelimit:
    @pytest.mark.parametrize(
        "text,seconds",
        [
            ("5", 300.0),
            ("0:30", 30.0),
            ("2:05", 125.0),
            ("1:00:00", 3600.0),
            ("1-00:00:00", 86400.0),
        ],
    )
    def test_formats(self, text, seconds):
        assert parse_timelimit(text) == seconds

    def test_bad_format(self):
        with pytest.raises(ValueError):
            parse_timelimit("1:2:3:4")


class TestSbatch:
    def test_parsable_prints_id(self, spool, capsys):
        assert sbatch("--parsable", "-J", "a", "-N", "2", "-t", "0:30",
                      "--wrap", "sleep 1") == 0
        assert capsys.readouterr().out.strip() == "1"
        assert sbatch("--parsable", "--wrap", "sleep 1") == 0
        assert capsys.readouterr().out.strip() == "2"

    def test_requires_wrap(self, spool, capsys):
        assert sbatch("--parsable") == 1
        assert "--wrap" in capsys.readouterr().err

    def test_missing_spool_env(self, monkeypatch, capsys):
        monkeypatch.delenv(SPOOL_ENV, raising=False)
        with pytest.raises(SystemExit):
            sbatch("--parsable", "--wrap", "sleep 1")


class TestLifecycle:
    def _submit(self, capsys, duration="30", limit="10:00"):
        sbatch("--parsable", "-t", limit, "--wrap", f"sleep {duration}")
        return int(capsys.readouterr().out.strip())

    def _sacct_row(self, capsys, job_id):
        main(["sacct", "--parsable2", "--noheader",
              "--format=JobID,JobName,State,NNodes,Submit,Start,End,ElapsedRaw",
              "-j", str(job_id)])
        row = capsys.readouterr().out.strip().splitlines()[-1]
        return row.split("|")

    def test_running_then_completed(self, spool, capsys, monkeypatch):
        job_id = self._submit(capsys, duration="30")
        cells = self._sacct_row(capsys, job_id)
        assert cells[2] == "RUNNING"
        assert cells[6] == "Unknown"
        # Fast-forward the clock past the sleep.
        real = time.time
        monkeypatch.setattr(fake_slurmd.time, "time", lambda: real() + 60.0)
        cells = self._sacct_row(capsys, job_id)
        assert cells[2] == "COMPLETED"
        assert float(cells[7]) == pytest.approx(30.0)

    def test_timeout_when_duration_exceeds_limit(self, spool, capsys, monkeypatch):
        job_id = self._submit(capsys, duration="600", limit="0:05")
        real = time.time
        monkeypatch.setattr(fake_slurmd.time, "time", lambda: real() + 30.0)
        cells = self._sacct_row(capsys, job_id)
        assert cells[2] == "TIMEOUT"
        assert float(cells[7]) == pytest.approx(5.0)

    def test_scancel_marks_cancelled(self, spool, capsys):
        job_id = self._submit(capsys, duration="600")
        assert main(["scancel", str(job_id)]) == 0
        capsys.readouterr()
        cells = self._sacct_row(capsys, job_id)
        assert cells[2].startswith("CANCELLED")

    def test_scancel_unknown_job(self, spool, capsys):
        assert main(["scancel", "99"]) == 1
        assert "Invalid job id" in capsys.readouterr().err

    def test_squeue_lists_only_live_jobs(self, spool, capsys):
        live = self._submit(capsys, duration="600")
        done = self._submit(capsys, duration="0")
        main(["squeue"])
        out = capsys.readouterr().out
        assert f"{live}|RUNNING" in out
        assert str(done) not in out


class TestScontrol:
    def _submit(self, capsys, duration="600", limit="10:00"):
        sbatch("--parsable", "-t", limit, "--wrap", f"sleep {duration}")
        return int(capsys.readouterr().out.strip())

    def test_update_time_limit(self, spool, capsys):
        job_id = self._submit(capsys)
        assert main(["scontrol", "update", f"JobId={job_id}", "TimeLimit=0:05"]) == 0
        capsys.readouterr()
        main(["sacct", "--parsable2", "--noheader", "--format=State",
              "-j", str(job_id)])
        # New 5s limit is shorter than the 600s sleep -> still RUNNING now,
        # but the spool record carries the updated limit.
        job = fake_slurmd._jobs(spool)[job_id]
        assert job["time_limit_s"] == 5.0

    def test_numnodes_update_refused(self, spool, capsys):
        job_id = self._submit(capsys)
        assert main(["scontrol", "update", f"JobId={job_id}", "NumNodes=4"]) == 1
        assert "error" in capsys.readouterr().err

    def test_unknown_job(self, spool, capsys):
        assert main(["scontrol", "update", "JobId=42", "TimeLimit=1:00"]) == 1
        assert "Invalid job id" in capsys.readouterr().err


class TestMain:
    def test_unknown_tool(self, capsys):
        assert main(["qsub"]) == 2
        assert "expected one of" in capsys.readouterr().err
