"""Conformance: the same scenario matrix against every backend.

The sim backend and the subprocess backend (over the hermetic
fake-slurmd CLI) must agree on every shared scenario's normalized
outcome; capability-gated scenarios (resize) are recorded as *known*
divergences in the report artifact, never silent.

Set ``REPRO_BACKEND_DIVERGENCE_REPORT=/path/report.json`` to export the
sim-vs-fake comparison (the CI ``backend-conformance`` job uploads it).
"""

from __future__ import annotations

import json
import os
import shlex
import sys
import tempfile

import pytest

from repro.api.session import Session
from repro.backend.fake_slurmd import SPOOL_ENV
from repro.backend.subprocess_slurm import SubprocessSlurmBackend
from repro.cluster.configs import ClusterConfig

from tests.backend.conformance import SCENARIOS, compare_matrices, run_matrix

#: Sim scenarios run in comfortable simulated tens-of-seconds.
SIM_UNIT = 10.0
#: Wall scenarios compress to sub-second sleeps so CI stays fast.
WALL_UNIT = 0.35

#: What every conforming backend must report for the shared matrix.
EXPECTED = {
    "submit_complete": {
        "state": "completed", "started": True, "accounted": True, "nodes": 2,
    },
    "cancel": {"state": "cancelled", "started": True, "cut_short": True},
    "timeout": {"state": "timeout", "started": True, "cut_short": True},
    "drain": {
        "all_terminal": True,
        "states": ["completed", "completed", "completed"],
        "batched": True,
    },
}

#: Backend-specific expectations for capability-gated scenarios.
EXPECTED_SIM_RESIZE = {"grown_to": 4, "shrunk_to": 2, "state": "cancelled"}


def make_sim_backend():
    session = Session(cluster=ClusterConfig(num_nodes=8))
    return session.with_backend("sim").execution_backend()


def _fake_command(tool: str) -> str:
    return f"{shlex.quote(sys.executable)} -m repro.backend.fake_slurmd {tool}"


def make_fake_backend():
    return SubprocessSlurmBackend(
        poll_interval=0.05,
        sbatch=_fake_command("sbatch"),
        scancel=_fake_command("scancel"),
        squeue=_fake_command("squeue"),
        sacct=_fake_command("sacct"),
        scontrol=_fake_command("scontrol"),
    )


@pytest.fixture(scope="module")
def sim_matrix():
    return run_matrix(make_sim_backend, SIM_UNIT)


@pytest.fixture(scope="module")
def fake_matrix():
    with tempfile.TemporaryDirectory(prefix="fake-slurmd-") as spool:
        previous = os.environ.get(SPOOL_ENV)
        os.environ[SPOOL_ENV] = spool
        try:
            yield run_matrix(make_fake_backend, WALL_UNIT)
        finally:
            if previous is None:
                del os.environ[SPOOL_ENV]
            else:
                os.environ[SPOOL_ENV] = previous


@pytest.mark.parametrize("scenario", sorted(EXPECTED))
def test_sim_backend_conforms(sim_matrix, scenario):
    assert sim_matrix[scenario] == EXPECTED[scenario]


def test_sim_backend_resize(sim_matrix):
    assert sim_matrix["resize"] == EXPECTED_SIM_RESIZE


@pytest.mark.parametrize("scenario", sorted(EXPECTED))
def test_subprocess_backend_conforms(fake_matrix, scenario):
    assert fake_matrix[scenario] == EXPECTED[scenario]


def test_subprocess_backend_gates_resize(fake_matrix):
    assert fake_matrix["resize"] == {"unsupported": True}


def test_sim_vs_fake_divergence_report(sim_matrix, fake_matrix, tmp_path):
    shared, divergences = compare_matrices(sim_matrix, fake_matrix)
    report = {
        "reference": "sim",
        "candidate": "slurm(fake-slurmd)",
        "scenarios": sorted(SCENARIOS),
        "shared_identical": shared,
        "divergences": divergences,
    }
    out = os.environ.get(
        "REPRO_BACKEND_DIVERGENCE_REPORT", str(tmp_path / "divergence.json")
    )
    with open(out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)

    # Every shared scenario agrees...
    assert set(shared) == set(SCENARIOS) - {"resize"}
    # ...and the only divergence is the declared capability gap.
    assert [d["kind"] for d in divergences] == ["capability"]
    assert divergences[0]["scenario"] == "resize"
