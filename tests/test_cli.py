"""Tests for the command-line interface."""

import pytest

from repro.cli import ARTIFACTS, main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig10" in out and "table2" in out


def test_unknown_artifact(capsys):
    assert main(["nope"]) == 2
    assert "unknown artifact" in capsys.readouterr().err


def test_fig1_prints_table(capsys):
    assert main(["fig1"]) == 0
    out = capsys.readouterr().out
    assert "C/R spawning" in out
    assert "48-24" in out


def test_multiple_artifacts_deduplicated(capsys):
    assert main(["fig1", "fig1"]) == 0
    out = capsys.readouterr().out
    assert out.count("Fig. 1:") == 1


def test_csv_output(tmp_path, capsys):
    out = tmp_path / "csvs"
    assert main(["fig1", "--csv", str(out)]) == 0
    written = out / "fig1.csv"
    assert written.exists()
    header = written.read_text().splitlines()[0]
    assert header.startswith("initial_procs,")
    assert "csv written" in capsys.readouterr().out


def test_csv_skipped_for_unsupported_artifact(tmp_path):
    out = tmp_path / "csvs"
    assert main(["fig4", "--csv", str(out)]) == 0
    assert not (out / "fig4.csv").exists()


def test_registry_covers_every_eval_artifact():
    expected = {f"fig{i}" for i in (1, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12)}
    expected |= {"table2", "scalability"}
    assert set(ARTIFACTS) == expected


def test_scalability_artifact(capsys):
    assert main(["scalability"]) == 0
    out = capsys.readouterr().out
    assert "sweet spot" in out
