"""Tests for the command-line interface (registry-driven)."""

import json

import pytest

import repro.cli as cli
from repro.api.registry import ArtifactRegistry, builtin_registry
from repro.cli import main


class FakeResult:
    def __init__(self, tag):
        self.tag = tag

    def as_table(self):
        return f"TABLE<{self.tag}>"

    def as_csv(self):
        return f"col\n{self.tag}"


@pytest.fixture
def stub_registry(monkeypatch):
    """A tiny fast registry: two artifacts, one with CSV support."""
    reg = ArtifactRegistry()
    calls = []

    @reg.artifact("alpha", csv=True, description="first")
    def alpha(seed=None):
        calls.append(("alpha", seed))
        return FakeResult(f"alpha-{seed}")

    @reg.artifact("beta", description="second")
    def beta(seed=None):
        calls.append(("beta", seed))
        return FakeResult(f"beta-{seed}")

    monkeypatch.setattr(cli, "builtin_registry", lambda: reg)
    reg.calls = calls
    return reg


# -- artifact selection ------------------------------------------------------

def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig10" in out and "table2" in out
    assert "run --workload" in out


def test_unknown_artifact(capsys):
    assert main(["nope"]) == 2
    assert "unknown artifact" in capsys.readouterr().err


def test_unknown_artifact_aborts_before_rendering(stub_registry, capsys):
    assert main(["alpha", "nope"]) == 2
    assert stub_registry.calls == []  # nothing ran


def test_single_artifact(stub_registry, capsys):
    assert main(["alpha"]) == 0
    assert "TABLE<alpha-None>" in capsys.readouterr().out


def test_all_selects_everything_once(stub_registry, capsys):
    assert main(["all", "alpha"]) == 0
    out = capsys.readouterr().out
    assert out.count("TABLE<alpha-None>") == 1
    assert out.count("TABLE<beta-None>") == 1


def test_multiple_artifacts_deduplicated(stub_registry, capsys):
    assert main(["alpha", "alpha"]) == 0
    assert capsys.readouterr().out.count("TABLE<alpha") == 1
    assert stub_registry.calls == [("alpha", None)]


def test_seed_is_plumbed_to_producers(stub_registry, capsys):
    assert main(["alpha", "--seed", "7"]) == 0
    assert stub_registry.calls == [("alpha", 7)]
    assert "TABLE<alpha-7>" in capsys.readouterr().out


def test_fig1_prints_table(capsys):
    assert main(["fig1"]) == 0
    out = capsys.readouterr().out
    assert "C/R spawning" in out
    assert "48-24" in out


def test_scalability_artifact(capsys):
    assert main(["scalability"]) == 0
    assert "sweet spot" in capsys.readouterr().out


def test_registry_covers_every_eval_artifact():
    expected = {f"fig{i}" for i in (1, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12)}
    expected |= {"table2", "scalability", "resilience"}
    assert set(builtin_registry().names()) == expected


# -- CSV emission ------------------------------------------------------------

def test_csv_output(tmp_path, capsys):
    out = tmp_path / "csvs"
    assert main(["fig1", "--csv", str(out)]) == 0
    written = out / "fig1.csv"
    assert written.exists()
    header = written.read_text().splitlines()[0]
    assert header.startswith("initial_procs,")
    assert "csv written" in capsys.readouterr().out


def test_csv_skipped_for_unsupported_artifact(stub_registry, tmp_path, capsys):
    out = tmp_path / "csvs"
    assert main(["beta", "--csv", str(out)]) == 0
    assert not (out / "beta.csv").exists()


def test_csv_written_only_for_supporting_artifacts(stub_registry, tmp_path):
    out = tmp_path / "csvs"
    assert main(["all", "--csv", str(out)]) == 0
    assert (out / "alpha.csv").read_text() == "col\nalpha-None"
    assert not (out / "beta.csv").exists()


def test_csv_render_reuses_cached_result(stub_registry, tmp_path):
    assert main(["alpha", "--csv", str(tmp_path)]) == 0
    # One producer call serves both the table and the CSV.
    assert stub_registry.calls == [("alpha", None)]


# -- run mode ----------------------------------------------------------------

TINY_SWF = """\
; two tiny jobs
1 0 -1 8 2 -1 -1 2 10 -1 1 -1 -1 -1 -1 -1 -1 -1
2 1 -1 8 1 -1 -1 1 10 -1 1 -1 -1 -1 -1 -1 -1 -1
"""


@pytest.fixture
def swf_file(tmp_path):
    path = tmp_path / "tiny.swf"
    path.write_text(TINY_SWF)
    return path


def test_run_flexible(swf_file, capsys):
    assert main(["run", "--workload", str(swf_file), "--flexible"]) == 0
    out = capsys.readouterr().out
    assert "SWF replay" in out
    assert "flexible" in out


def test_run_rigid_with_nodes_and_seed(swf_file, capsys):
    assert main(["run", "--workload", str(swf_file), "--rigid",
                 "--nodes", "4", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "rigid" in out
    assert "(4 nodes)" in out
    # Replays are deterministic; the CLI says so instead of silently
    # swallowing the flag.
    assert "--seed has no effect" in out


def test_run_rejects_unusable_swf(tmp_path, capsys):
    bad = tmp_path / "bad.swf"
    bad.write_text("; comments only, no jobs\n")
    assert main(["run", "--workload", str(bad)]) == 2
    assert "invalid workload" in capsys.readouterr().err


def test_run_writes_csv(swf_file, tmp_path, capsys):
    out_dir = tmp_path / "csvs"
    assert main(["run", "--workload", str(swf_file), "--csv", str(out_dir)]) == 0
    text = (out_dir / "run.csv").read_text()
    assert text.startswith("jobs,rendition,")


def test_run_requires_workload(capsys):
    assert main(["run"]) == 2
    assert "--workload" in capsys.readouterr().err


def test_run_rejects_flexible_and_rigid(swf_file, capsys):
    assert main(["run", "--workload", str(swf_file),
                 "--flexible", "--rigid"]) == 2
    assert "mutually exclusive" in capsys.readouterr().err


def test_run_rejects_extra_artifacts(swf_file, capsys):
    assert main(["run", "fig1", "--workload", str(swf_file)]) == 2
    assert "no artifact names" in capsys.readouterr().err


def test_run_unreadable_workload(tmp_path, capsys):
    assert main(["run", "--workload", str(tmp_path / "missing.swf")]) == 2
    assert "cannot read workload" in capsys.readouterr().err


def test_workload_flag_requires_run_mode(swf_file, capsys):
    assert main(["fig1", "--workload", str(swf_file)]) == 2
    assert "requires the 'run' mode" in capsys.readouterr().err


# -- backends mode + run --backend -------------------------------------------

def _fake_slurm_env(monkeypatch, tmp_path):
    """Point the slurm backend at the hermetic fake CLI."""
    import shlex
    import sys as _sys

    from repro.backend.fake_slurmd import SPOOL_ENV

    monkeypatch.setenv(SPOOL_ENV, str(tmp_path / "spool"))
    for tool in ("sbatch", "scancel", "squeue", "sacct", "scontrol"):
        monkeypatch.setenv(
            f"REPRO_SLURM_{tool.upper()}",
            f"{shlex.quote(_sys.executable)} -m repro.backend.fake_slurmd "
            f"{tool}",
        )


class TestBackendsMode:
    def test_lists_backends_with_flags(self, capsys):
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        assert "sim" in out and "slurm" in out
        assert "clock" in out and "resize" in out

    def test_json_listing(self, capsys):
        assert main(["backends", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        by_name = {row["name"]: row for row in rows}
        assert by_name["sim"]["available"] is True
        assert by_name["sim"]["resize"] is True
        assert by_name["slurm"]["clock"] == "wall"
        assert by_name["slurm"]["resize"] is False

    def test_probe_reflects_fake_commands(self, monkeypatch, tmp_path, capsys):
        _fake_slurm_env(monkeypatch, tmp_path)
        assert main(["backends", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        slurm = next(row for row in rows if row["name"] == "slurm")
        assert slurm["available"] is True


class TestRunBackend:
    def test_unknown_backend(self, swf_file, capsys):
        assert main(["run", "--workload", str(swf_file),
                     "--backend", "pbs"]) == 2
        assert "unknown backend" in capsys.readouterr().err

    def test_time_scale_needs_wall_backend(self, swf_file, capsys):
        assert main(["run", "--workload", str(swf_file),
                     "--time-scale", "0.1"]) == 2
        assert "wall-clock" in capsys.readouterr().err

    def test_time_scale_must_be_positive(self, swf_file, capsys):
        assert main(["run", "--workload", str(swf_file),
                     "--backend", "slurm", "--time-scale", "0"]) == 2
        assert "positive" in capsys.readouterr().err

    def test_backend_flag_requires_run_mode(self, capsys):
        assert main(["fig1", "--backend", "slurm"]) == 2
        assert "require the 'run' mode" in capsys.readouterr().err

    def test_run_over_fake_slurm(self, swf_file, monkeypatch, tmp_path, capsys):
        _fake_slurm_env(monkeypatch, tmp_path)
        assert main(["run", "--workload", str(swf_file), "--rigid",
                     "--nodes", "4", "--backend", "slurm",
                     "--time-scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "[backend=slurm]" in out
        assert "rigid" in out


# -- sweep / bench / cache modes ---------------------------------------------

class TestSweepMode:
    def test_artifact_ensemble_reports_mean_ci(self, capsys):
        assert main(["sweep", "--artifact", "fig1", "--seeds", "2",
                     "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "mean ± 95% CI" in out
        assert "artifact=fig1" in out
        assert "2 cells over seeds 2017..2018" in out

    def test_second_invocation_is_served_from_the_store(self, capsys):
        args = ["sweep", "--artifact", "fig1", "--seeds", "3", "--quiet"]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "3 cached, 0 computed" in out
        assert "served 3/3 lookups from cache" in out

    def test_csv_to_stdout(self, capsys):
        assert main(["sweep", "--artifact", "fig1", "--seeds", "2",
                     "--quiet", "--csv"]) == 0
        out = capsys.readouterr().out
        assert "group,metric,n,mean,ci95_half" in out

    def test_csv_to_directory(self, tmp_path, capsys):
        out_dir = tmp_path / "out"
        assert main(["sweep", "--artifact", "fig1", "--seeds", "2",
                     "--quiet", "--csv", str(out_dir)]) == 0
        text = (out_dir / "sweep.csv").read_text()
        assert text.startswith("group,metric,")

    def test_workload_grid(self, capsys):
        assert main(["sweep", "--workload", "fs", "--num-jobs", "4",
                     "--nodes", "8", "--seeds", "2", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "workload=fs;num_jobs=4;nodes=8" in out
        assert "flexible_makespan_s" in out

    def test_progress_streams_to_stderr(self, capsys):
        assert main(["sweep", "--artifact", "fig1", "--seeds", "2"]) == 0
        err = capsys.readouterr().err
        assert "run    artifact=fig1;seed=2017" in err
        assert "done   artifact=fig1;seed=2018" in err

    def test_unknown_artifact_rejected(self, capsys):
        assert main(["sweep", "--artifact", "nope", "--seeds", "2"]) == 2
        assert "unknown artifact" in capsys.readouterr().err

    def test_invalid_grid_rejected(self, capsys):
        assert main(["sweep", "--seeds", "2"]) == 2
        assert "invalid sweep" in capsys.readouterr().err

    def test_artifact_without_metrics_fails_cleanly(self, capsys):
        assert main(["sweep", "--artifact", "fig4", "--seeds", "1",
                     "--quiet"]) == 1
        assert "no CSV metric form" in capsys.readouterr().err

    def test_invalid_jobs_fails_cleanly(self, capsys):
        assert main(["sweep", "--artifact", "fig1", "--seeds", "1",
                     "--jobs", "0", "--quiet"]) == 1
        assert "jobs must be >= 1" in capsys.readouterr().err

    def test_workload_sweep_reports_ensemble_events(self, capsys):
        assert main(["sweep", "--workload", "fs", "--num-jobs", "4",
                     "--nodes", "8", "--seeds", "2", "--quiet"]) == 0
        out = capsys.readouterr().out
        # 2 cells x 2 renditions x 4 jobs, fanned in from the workers.
        assert "observed across the ensemble: 16 job completions" in out

    def test_aggregate_csv_stays_single_delimiter(self, capsys):
        """Fig. 1 metric keys span two axis columns; the CSV must keep
        one comma-separated field count on every row."""
        assert main(["sweep", "--artifact", "fig1", "--seeds", "2",
                     "--quiet", "--csv"]) == 0
        lines = capsys.readouterr().out.splitlines()
        header = lines.index("group,metric,n,mean,ci95_half,ci_low,ci_high,median,stdev")
        csv_lines = [ln for ln in lines[header:] if ln]
        assert len(csv_lines) > 1
        assert all(len(ln.split(",")) == 9 for ln in csv_lines)
        assert any("[initial_procs=48;target_procs=12]" in ln for ln in csv_lines)


class TestBenchMode:
    def test_quick_bench_writes_well_formed_json(self, tmp_path, capsys):
        import json

        out = tmp_path / "BENCH_sweep.json"
        assert main(["bench", "--quick", "--quiet", "--out", str(out)]) == 0
        data = json.loads(out.read_text())
        assert data["bench"] == "sweep"
        assert set(data["artifacts"]) == {"fig1", "fig3", "table2"}
        for entry in data["artifacts"].values():
            assert entry["cells"] == 2
            assert entry["metrics"]
        assert "[bench written to" in capsys.readouterr().out

    def test_bench_sched_writes_well_formed_json(self, tmp_path, capsys):
        import json

        out = tmp_path / "BENCH_sched.json"
        assert main(["bench", "sched", "--sizes", "300", "--quiet",
                     "--out", str(out)]) == 0
        data = json.loads(out.read_text())
        assert data["bench"] == "sched"
        assert list(data["traces"]) == ["300"]
        entry = data["traces"]["300"]
        assert entry["incremental"]["jobs_started"] == 300
        # Same schedule, asymptotically less work.
        assert entry["legacy"]["makespan_s"] == entry["incremental"]["makespan_s"]
        assert entry["speedup"]["comparisons_ratio"] > 1.0
        assert "300" in data["swf_roundtrip"]
        assert "[bench written to" in capsys.readouterr().out

    def test_bench_sched_no_legacy(self, tmp_path, capsys):
        import json

        out = tmp_path / "BENCH_sched.json"
        assert main(["bench", "sched", "--sizes", "200", "--no-legacy",
                     "--quiet", "--out", str(out)]) == 0
        data = json.loads(out.read_text())
        entry = data["traces"]["200"]
        assert "legacy" not in entry and "speedup" not in entry


class TestCacheMode:
    def test_ls_empty(self, capsys):
        assert main(["cache", "ls"]) == 0
        assert "0 record(s)" in capsys.readouterr().out

    def test_ls_after_sweep_shows_records(self, capsys):
        assert main(["sweep", "--artifact", "fig1", "--seeds", "2",
                     "--quiet"]) == 0
        capsys.readouterr()
        assert main(["cache", "ls"]) == 0
        out = capsys.readouterr().out
        assert "2 record(s)" in out
        assert "artifact=fig1" in out

    def test_clear(self, capsys):
        assert main(["sweep", "--artifact", "fig1", "--seeds", "2",
                     "--quiet"]) == 0
        capsys.readouterr()
        assert main(["cache", "clear"]) == 0
        assert "removed 2 record(s)" in capsys.readouterr().out
        assert main(["cache", "ls"]) == 0
        assert "0 record(s)" in capsys.readouterr().out

    def test_ls_json(self, capsys):
        assert main(["sweep", "--artifact", "fig1", "--seeds", "2",
                     "--quiet"]) == 0
        capsys.readouterr()
        assert main(["cache", "ls", "--json"]) == 0
        listing = json.loads(capsys.readouterr().out)
        assert len(listing["records"]) == 2
        assert {"hits", "misses", "puts"} <= set(listing["stats"])
        assert all(r["spec"]["artifact"] == "fig1"
                   for r in listing["records"])

    def test_clear_rejects_json(self, capsys):
        assert main(["cache", "clear", "--json"]) == 2
        assert "'ls' only" in capsys.readouterr().err


class TestArtifactStoreCache:
    def test_repeat_fig1_skips_the_producer(self, capsys, monkeypatch):
        """Repeated `repro figN` invocations are served from disk."""
        import repro.experiments.fig01_cr_vs_dmr as fig01

        assert main(["fig1"]) == 0
        first = capsys.readouterr().out

        def boom(*a, **kw):
            raise AssertionError("producer re-ran despite the store")

        monkeypatch.setattr(fig01, "run_fig01", boom)
        builtin_registry().clear_cache()  # drop the in-memory result too
        assert main(["fig1"]) == 0
        assert capsys.readouterr().out == first

    def test_no_cache_flag_bypasses_the_store(self, capsys, monkeypatch):
        import repro.experiments.fig01_cr_vs_dmr as fig01

        assert main(["fig1"]) == 0
        capsys.readouterr()
        calls = []
        real = fig01.run_fig01
        monkeypatch.setattr(
            fig01, "run_fig01", lambda *a, **kw: calls.append(1) or real()
        )
        builtin_registry().clear_cache()
        assert main(["fig1", "--no-cache"]) == 0
        assert calls == [1]


# -- resilience mode ----------------------------------------------------------

def test_resilience_quick_check_passes(tmp_path, capsys):
    out = tmp_path / "csvs"
    assert main(["resilience", "--quick", "--check", "--csv", str(out)]) == 0
    printed = capsys.readouterr().out
    assert "DMR strictly ahead" in printed
    csv_text = (out / "resilience.csv").read_text()
    assert "work_fraction" in csv_text.splitlines()[0]


def test_resilience_custom_mtbf_list(capsys):
    assert main(["resilience", "--quick", "--mtbf", "500"]) == 0
    assert "MTBF 500s" in capsys.readouterr().out


def test_resilience_rejects_bad_mtbf_list():
    with pytest.raises(SystemExit):
        main(["resilience", "--mtbf", "fast,slow"])


def test_resilience_rejects_empty_mtbf_list(capsys):
    assert main(["resilience", "--mtbf", ","]) == 2
    assert "at least one value" in capsys.readouterr().err


def test_resilience_rejects_nonpositive_values(capsys):
    assert main(["resilience", "--quick", "--mtbf", "-100"]) == 2
    assert "positive" in capsys.readouterr().err
    assert main(["resilience", "--quick", "--repair-time", "0"]) == 2
    assert main(["resilience", "--quick", "--num-jobs", "0"]) == 2


def test_resilience_rejects_nan_values(capsys):
    assert main(["resilience", "--quick", "--mtbf", "nan"]) == 2
    assert "finite" in capsys.readouterr().err
    assert main(["resilience", "--quick", "--repair-time", "nan"]) == 2


# -- trace mode ----------------------------------------------------------------

def test_trace_fig1_writes_valid_perfetto_file(tmp_path, capsys):
    from repro.obs.perfetto import validate_trace_file

    out = tmp_path / "trace.json"
    assert main(["trace", "fig1", "--quick", "--num-jobs", "6",
                 "--out", str(out)]) == 0
    summary = validate_trace_file(str(out))
    # The acceptance triad: scheduler passes, reconfigurations, faults.
    assert summary["names"]["sched.pass"] > 0
    assert summary["names"]["runtime.reconfig"] > 0
    assert summary["names"]["fault.inject"] > 0
    stdout = capsys.readouterr().out
    assert "cid trace-fig1-2017" in stdout
    assert "written to" in stdout


def test_trace_unknown_scenario_rejected(tmp_path, capsys):
    assert main(["trace", "nope", "--out", str(tmp_path / "t.json")]) == 2
    assert "unknown trace scenario" in capsys.readouterr().err


def test_sweep_trace_flag_exports_cell_spans(tmp_path, capsys):
    from repro.obs.perfetto import validate_trace_file

    out = tmp_path / "sweep-trace.json"
    assert main(["sweep", "--workload", "fs", "--num-jobs", "4",
                 "--seeds", "1", "--quiet", "--trace", str(out)]) == 0
    summary = validate_trace_file(str(out))
    assert summary["names"]["sweep.cell"] == 1
    assert summary["names"]["sched.pass"] > 0
    assert any(name.startswith("sweep/0/") for name in summary["track_names"])
    assert "trace events" in capsys.readouterr().out


def test_bench_sched_trace_flag_exports_replay_spans(tmp_path, capsys):
    from repro.obs.perfetto import validate_trace_file

    out = tmp_path / "BENCH_sched.json"
    trace_out = tmp_path / "sched-trace.json"
    assert main(["bench", "sched", "--sizes", "200", "--no-legacy",
                 "--quiet", "--out", str(out),
                 "--trace", str(trace_out)]) == 0
    summary = validate_trace_file(str(trace_out))
    assert summary["names"]["sched.pass"] > 0
    import json

    stats = json.loads(out.read_text())["traces"]["200"]["incremental"]
    assert stats["spans_recorded"] == summary["names"]["sched.pass"]
    assert stats["spans_dropped"] == 0
