"""Tests for the seed-ensemble aggregation layer."""

from repro.sweep import CellOutcome, RunSpec, SweepResult


def _cell(seed, metrics, *, num_jobs=10, cached=False):
    return CellOutcome(
        spec=RunSpec(kind="workload", workload="fs", num_jobs=num_jobs,
                     seed=seed),
        metrics=metrics,
        wall_time=0.5,
        cached=cached,
        events={},
    )


def _result(*cells, jobs=1):
    return SweepResult(cells=tuple(cells), jobs=jobs)


class TestAggregation:
    def test_groups_by_non_seed_axes(self):
        result = _result(
            _cell(1, {"makespan_s": 10.0}),
            _cell(2, {"makespan_s": 14.0}),
            _cell(1, {"makespan_s": 100.0}, num_jobs=50),
            _cell(2, {"makespan_s": 104.0}, num_jobs=50),
        )
        agg = result.aggregate()
        by_group = {(r.group, r.metric): r.stats for r in agg.rows}
        small = by_group[("workload=fs;num_jobs=10;policy=default", "makespan_s")]
        large = by_group[("workload=fs;num_jobs=50;policy=default", "makespan_s")]
        assert small.n == 2 and small.mean == 12.0
        assert large.n == 2 and large.mean == 102.0

    def test_group_order_follows_grid_metric_order_alphabetical(self):
        result = _result(
            _cell(1, {"b_metric": 1.0, "a_metric": 2.0}, num_jobs=50),
            _cell(1, {"b_metric": 1.0, "a_metric": 2.0}, num_jobs=10),
        )
        rows = result.aggregate().rows
        assert [r.group for r in rows] == [
            "workload=fs;num_jobs=50;policy=default", "workload=fs;num_jobs=50;policy=default",
            "workload=fs;num_jobs=10;policy=default", "workload=fs;num_jobs=10;policy=default",
        ]
        assert [r.metric for r in rows[:2]] == ["a_metric", "b_metric"]

    def test_ci_band_is_the_t_interval(self):
        result = _result(
            _cell(1, {"m": 10.0}),
            _cell(2, {"m": 12.0}),
            _cell(3, {"m": 14.0}),
        )
        (row,) = result.aggregate().rows
        assert row.stats.mean == 12.0
        assert row.stats.median == 12.0
        # stdev = 2, t(df=2) = 4.303 -> half width = 4.303 * 2 / sqrt(3)
        assert abs(row.stats.ci95_half - 4.303 * 2.0 / 3.0**0.5) < 1e-9
        assert "±" in row.stats.format_mean_ci()

    def test_total_events_fans_in_worker_tallies(self):
        a = _cell(1, {"m": 1.0})
        b = _cell(2, {"m": 2.0})
        cells = (
            CellOutcome(spec=a.spec, metrics=a.metrics, wall_time=0.1,
                        cached=False,
                        events={"completions": 4, "resizes": 7,
                                "raw_events": 100}),
            CellOutcome(spec=b.spec, metrics=b.metrics, wall_time=0.1,
                        cached=True,
                        events={"completions": 4, "resizes": 3,
                                "raw_events": 80}),
        )
        totals = SweepResult(cells=cells).total_events()
        assert totals["completions"] == 8
        assert totals["resizes"] == 10
        assert totals["raw_events"] == 180
        assert totals["submits"] == 0

    def test_counters(self):
        result = _result(
            _cell(1, {"m": 1.0}, cached=True),
            _cell(2, {"m": 2.0}),
            jobs=4,
        )
        assert result.cached_cells == 1
        assert result.computed_cells == 1
        assert result.compute_wall_time == 0.5  # misses only
        assert len(result) == 2


class TestRendering:
    def test_table_shows_mean_ci(self):
        result = _result(_cell(1, {"m": 10.0}), _cell(2, {"m": 14.0}))
        table = result.aggregate().as_table()
        assert "mean ± 95% CI" in table
        assert "workload=fs;num_jobs=10;policy=default" in table

    def test_csv_is_parseable_and_labeled(self):
        result = _result(_cell(1, {"m[x=1]": 10.0}), _cell(2, {"m[x=1]": 14.0}))
        csv = result.aggregate().as_csv()
        header, row = csv.strip().splitlines()
        assert header == "group,metric,n,mean,ci95_half,ci_low,ci_high,median,stdev"
        cells = row.split(",")
        assert cells[0] == "workload=fs;num_jobs=10;policy=default"  # ; keeps CSV intact
        assert cells[1] == "m[x=1]"
        assert float(cells[3]) == 12.0

    def test_as_dict_nests_group_metric(self):
        result = _result(_cell(1, {"m": 10.0}))
        d = result.aggregate().as_dict()
        assert d["workload=fs;num_jobs=10;policy=default"]["m"]["n"] == 1
        assert d["workload=fs;num_jobs=10;policy=default"]["m"]["ci95_half"] == 0.0
