"""Tests for the ``repro bench`` ensemble emitter."""

import json

from repro.store import ResultStore
from repro.sweep import run_bench, write_bench


def _quick_bench(store=None):
    # fig1 only: analytic, so the bench machinery is exercised in
    # milliseconds; the full artifact list is covered by the CLI smoke.
    return run_bench(quick=True, artifacts=("fig1",), store=store)


class TestRunBench:
    def test_payload_shape(self):
        data = _quick_bench()
        assert data["bench"] == "sweep"
        assert data["quick"] is True
        assert data["seeds"] == [2017, 2018]
        entry = data["artifacts"]["fig1"]
        assert entry["cells"] == 2
        assert entry["cached_cells"] == 0
        assert entry["ensemble_wall_s"] >= 0
        assert set(entry["cell_wall"]) == {
            "n", "mean", "median", "stdev", "ci95_half", "ci_low", "ci_high"
        }
        metrics = entry["metrics"]["artifact=fig1"]
        factor = metrics["factor[initial_procs=48;target_procs=12]"]
        assert factor["n"] == 2
        assert factor["mean"] > 1.0
        assert data["total_wall_s"] >= entry["ensemble_wall_s"]

    def test_store_feeds_second_bench(self, tmp_path):
        store = ResultStore(tmp_path)
        _quick_bench(store=store)
        data = _quick_bench(store=store)
        assert data["artifacts"]["fig1"]["cached_cells"] == 2

    def test_full_defaults_to_five_seeds(self):
        data = run_bench(artifacts=("fig1",))
        assert len(data["seeds"]) == 5
        assert data["quick"] is False


class TestWriteBench:
    def test_emits_well_formed_json(self, tmp_path):
        path = tmp_path / "BENCH_sweep.json"
        written = write_bench(_quick_bench(), str(path))
        assert written == str(path)
        data = json.loads(path.read_text())
        assert data["bench"] == "sweep"
        assert data["artifacts"]["fig1"]["metrics"]
