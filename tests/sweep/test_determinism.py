"""Determinism under parallelism: the ISSUE-mandated contract.

A sweep over N seeds must produce byte-identical aggregated CSV output
whether it ran serially (``--jobs 1``) or on a worker pool (``--jobs
4``), with or without the store in between — cell identity, seeding,
result ordering and float formatting are all scheduling-independent.
"""

from repro.store import ResultStore
from repro.sweep import Sweep, SweepRunner

GRID = Sweep.over(seeds=3, workloads=["fs"], num_jobs=[4, 8], nodes=[8])


def _csv(jobs, store=None):
    return SweepRunner(jobs=jobs, store=store).run(GRID).aggregate().as_csv()


def test_serial_and_pool_aggregates_are_byte_identical():
    assert _csv(jobs=1) == _csv(jobs=4)


def test_store_round_trip_preserves_bytes(tmp_path):
    """Computing, persisting, and re-serving must not perturb a single
    bit: JSON round-trips every float exactly."""
    store = ResultStore(tmp_path)
    computed = _csv(jobs=4, store=store)
    served = _csv(jobs=1, store=store)
    assert computed == served


def test_explicit_seed_list_equals_range_expansion():
    a = Sweep.over(seeds=3, base_seed=2017, workloads=["fs"], num_jobs=[4])
    b = Sweep.over(seeds=[2017, 2018, 2019], workloads=["fs"], num_jobs=[4])
    assert a == b
