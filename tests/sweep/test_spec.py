"""Tests for sweep grids: RunSpec identity and Sweep expansion."""

import pickle

import pytest

from repro.errors import SweepError
from repro.sweep import POLICY_PRESETS, RunSpec, Sweep


class TestRunSpec:
    def test_artifact_cell(self):
        spec = RunSpec(kind="artifact", artifact="fig3", seed=7)
        assert spec.group_label() == "artifact=fig3"
        assert spec.as_dict()["seed"] == 7
        assert spec.describe().endswith("seed=7")

    def test_workload_cell_axes(self):
        spec = RunSpec(kind="workload", workload="fs", num_jobs=25,
                       nodes=20, policy="deepest", seed=3)
        assert spec.group_label() == (
            "workload=fs;num_jobs=25;nodes=20;policy=deepest"
        )

    def test_async_mode_only_labels_when_set(self):
        quiet = RunSpec(kind="workload", workload="fs", num_jobs=5, seed=1)
        loud = RunSpec(kind="workload", workload="fs", num_jobs=5, seed=1,
                       async_mode=True)
        assert "async_mode" not in quiet.group_label()
        assert "async_mode=True" in loud.group_label()

    def test_as_dict_is_json_stable(self):
        spec = RunSpec(kind="artifact", artifact="fig1", seed=1)
        assert spec.as_dict() == {
            "kind": "artifact", "seed": 1, "artifact": "fig1",
            "workload": None, "num_jobs": None, "nodes": None,
            "policy": None, "async_mode": False, "max_sim_time": None,
            "backend": "sim",
        }

    def test_pickle_round_trip(self):
        spec = RunSpec(kind="workload", workload="realapps", num_jobs=50,
                       seed=2018, policy="default")
        assert pickle.loads(pickle.dumps(spec)) == spec

    @pytest.mark.parametrize("kwargs,msg", [
        (dict(kind="artifact", seed=1), "need an artifact name"),
        (dict(kind="artifact", artifact="fig3", num_jobs=5, seed=1),
         "no 'num_jobs' axis"),
        (dict(kind="workload", workload="nope", num_jobs=5, seed=1),
         "unknown workload family"),
        (dict(kind="workload", workload="fs", seed=1), "num_jobs >= 1"),
        (dict(kind="workload", workload="fs", num_jobs=5, nodes=0, seed=1),
         "nodes must be >= 1"),
        (dict(kind="workload", workload="fs", num_jobs=5, policy="nope",
              seed=1), "unknown policy preset"),
        (dict(kind="other", seed=1), "unknown cell kind"),
    ])
    def test_validation(self, kwargs, msg):
        with pytest.raises(SweepError, match=msg):
            RunSpec(**kwargs)

    def test_policy_none_canonicalizes_to_default(self):
        """policy=None and policy='default' execute identically, so they
        must be one cell identity (equality, store key, group label)."""
        implicit = RunSpec(kind="workload", workload="fs", num_jobs=5, seed=1)
        explicit = RunSpec(kind="workload", workload="fs", num_jobs=5, seed=1,
                           policy="default")
        assert implicit == explicit
        assert implicit.as_dict() == explicit.as_dict()
        assert implicit.group_label().endswith(";policy=default")

    def test_backend_only_labels_when_non_default(self):
        quiet = RunSpec(kind="workload", workload="fs", num_jobs=5, seed=1)
        loud = RunSpec(kind="workload", workload="fs", num_jobs=5, seed=1,
                       backend="slurm")
        assert "backend" not in quiet.group_label()
        assert "backend=slurm" in loud.group_label()
        # The store key still carries it either way.
        assert quiet.as_dict()["backend"] == "sim"
        assert loud.as_dict()["backend"] == "slurm"

    def test_artifact_cells_refuse_non_sim_backend(self):
        with pytest.raises(SweepError, match="simulator"):
            RunSpec(kind="artifact", artifact="fig1", seed=1, backend="slurm")
        with pytest.raises(SweepError, match="backend"):
            RunSpec(kind="workload", workload="fs", num_jobs=5, seed=1,
                    backend="")

    def test_policy_presets_are_distinct(self):
        assert set(POLICY_PRESETS) == {"default", "deepest", "literal"}
        assert len({repr(cfg) for cfg in POLICY_PRESETS.values()}) == 3


class TestSweepExpansion:
    def test_seed_count_expands_from_base(self):
        sweep = Sweep.over(seeds=3, base_seed=100, artifacts=["fig1"])
        assert [c.seed for c in sweep.cells] == [100, 101, 102]
        assert sweep.seeds == (100, 101, 102)

    def test_explicit_seed_list(self):
        sweep = Sweep.over(seeds=[5, 9, 2], artifacts=["fig1"])
        assert [c.seed for c in sweep.cells] == [5, 9, 2]

    def test_duplicate_seeds_rejected(self):
        with pytest.raises(SweepError, match="duplicate seeds"):
            Sweep.over(seeds=[1, 1], artifacts=["fig1"])

    def test_artifact_grid_is_product(self):
        sweep = Sweep.over(seeds=2, artifacts=["fig1", "fig3"])
        assert len(sweep) == 4
        assert [c.artifact for c in sweep.cells] == ["fig1", "fig1",
                                                     "fig3", "fig3"]

    def test_workload_grid_is_product_seeds_innermost(self):
        sweep = Sweep.over(
            seeds=2, workloads=["fs"], num_jobs=[10, 25],
            policies=["default", "deepest"],
        )
        assert len(sweep) == 8
        first = sweep.cells[0]
        assert (first.num_jobs, first.policy, first.seed) == (10, "default", 2017)
        # Seeds vary fastest: the grid is independent of executor order.
        assert [c.seed for c in sweep.cells[:2]] == [2017, 2018]

    def test_backend_threads_to_every_workload_cell(self):
        sweep = Sweep.over(
            seeds=2, workloads=["fs"], num_jobs=[5], backend="slurm"
        )
        assert all(c.backend == "slurm" for c in sweep.cells)
        assert all("backend=slurm" in c.group_label() for c in sweep.cells)

    def test_artifact_sweep_refuses_backend(self):
        with pytest.raises(SweepError, match="simulator"):
            Sweep.over(seeds=1, artifacts=["fig1"], backend="slurm")

    def test_grid_expansion_is_deterministic(self):
        make = lambda: Sweep.over(
            seeds=3, workloads=["fs", "realapps"], num_jobs=[10, 50],
            nodes=[20, 65],
        )
        assert make() == make()

    @pytest.mark.parametrize("kwargs,msg", [
        (dict(seeds=2), "artifacts or workloads axis"),
        (dict(seeds=2, artifacts=["fig1"], workloads=["fs"], num_jobs=[5]),
         "not both"),
        (dict(seeds=2, artifacts=["fig1"], num_jobs=[5]), "no 'num_jobs'"),
        (dict(seeds=2, workloads=["fs"]), "need a num_jobs axis"),
        (dict(seeds=0, artifacts=["fig1"]), "at least one seed"),
        (dict(seeds=[], artifacts=["fig1"]), "at least one seed"),
    ])
    def test_invalid_grids(self, kwargs, msg):
        with pytest.raises(SweepError, match=msg):
            Sweep.over(**kwargs)
