"""Tests for sweep execution: serial, pooled, cached, and failing."""

import pytest

from repro.errors import SimulationTimeout, SweepError
from repro.store import ResultStore
from repro.sweep import (
    RunSpec,
    Sweep,
    SweepObserver,
    SweepRunner,
    execute_cell,
    metrics_from_csv,
)

#: A tiny, fast workload grid (sub-second per cell).
TINY = Sweep.over(seeds=2, workloads=["fs"], num_jobs=[4], nodes=[8])


class TestMetricsFromCsv:
    def test_single_axis(self):
        csv = "jobs,fixed_s,gain_pct\n10,100.5,20\n25,200,10\n"
        assert metrics_from_csv(csv) == {
            "fixed_s[jobs=10]": 100.5,
            "fixed_s[jobs=25]": 200.0,
            "gain_pct[jobs=10]": 20.0,
            "gain_pct[jobs=25]": 10.0,
        }

    def test_non_numeric_column_becomes_axis(self):
        csv = ("num_jobs,rendition,makespan_s\n"
               "50,fixed,10\n50,flexible,5\n")
        metrics = metrics_from_csv(csv)
        assert metrics["makespan_s[num_jobs=50;rendition=fixed]"] == 10.0
        assert metrics["makespan_s[num_jobs=50;rendition=flexible]"] == 5.0

    def test_columns_promoted_until_rows_unique(self):
        # Fig. 1's shape: the first column is constant across rows.
        csv = ("initial,target,cost\n48,12,1\n48,24,2\n48,48,3\n")
        metrics = metrics_from_csv(csv)
        assert metrics == {
            "cost[initial=48;target=12]": 1.0,
            "cost[initial=48;target=24]": 2.0,
            "cost[initial=48;target=48]": 3.0,
        }

    @pytest.mark.parametrize("csv,msg", [
        ("only_header\n", "no data rows"),
        ("a,b\n1\n", "ragged"),
        ("name,kind\nx,y\n", "no numeric metric columns"),
    ])
    def test_rejects_unusable_csv(self, csv, msg):
        with pytest.raises(SweepError, match=msg):
            metrics_from_csv(csv)


class TestExecuteCell:
    def test_workload_cell_metrics_and_event_fan_in(self):
        payload = execute_cell(TINY.cells[0])
        metrics = payload["metrics"]
        assert metrics["fixed_makespan_s"] > 0
        assert metrics["flexible_makespan_s"] > 0
        assert set(metrics) >= {"makespan_gain_pct", "wait_gain_pct",
                                "flexible_utilization_pct"}
        # EventCounter tallies fan in by value: both renditions ran.
        events = payload["events"]
        assert events["submits"] == 2 * 4
        assert events["completions"] == 2 * 4
        assert events["raw_events"] > 0
        assert payload["wall_time"] > 0

    def test_artifact_cell_without_csv_is_rejected(self):
        spec = RunSpec(kind="artifact", artifact="fig4", seed=1)
        with pytest.raises(SweepError, match="no CSV metric form"):
            execute_cell(spec)

    def test_artifact_cell_extracts_metrics(self):
        spec = RunSpec(kind="artifact", artifact="fig1", seed=1)
        metrics = execute_cell(spec)["metrics"]
        assert metrics["factor[initial_procs=48;target_procs=12]"] > 1.0


class _Recorder(SweepObserver):
    def __init__(self):
        self.started = []
        self.done = []

    def on_cell_start(self, index, total, spec):
        self.started.append((index, spec.seed))

    def on_cell_done(self, index, total, outcome):
        self.done.append((index, outcome.spec.seed, outcome.cached))


class TestSweepRunner:
    def test_rejects_bad_jobs(self):
        with pytest.raises(SweepError, match="jobs must be >= 1"):
            SweepRunner(jobs=0)

    def test_serial_run_in_grid_order(self):
        recorder = _Recorder()
        result = SweepRunner(jobs=1, observers=[recorder]).run(TINY)
        assert [c.spec.seed for c in result.cells] == [2017, 2018]
        assert result.cached_cells == 0
        assert result.computed_cells == 2
        assert recorder.started == [(0, 2017), (1, 2018)]
        assert recorder.done == [(0, 2017, False), (1, 2018, False)]

    def test_pool_matches_serial_metrics(self):
        serial = SweepRunner(jobs=1).run(TINY)
        pooled = SweepRunner(jobs=2).run(TINY)
        assert [c.metrics for c in pooled.cells] == [
            c.metrics for c in serial.cells
        ]
        assert [c.spec for c in pooled.cells] == [c.spec for c in serial.cells]

    def test_store_serves_second_run(self, tmp_path):
        store = ResultStore(tmp_path)
        first = SweepRunner(jobs=1, store=store).run(TINY)
        assert first.cached_cells == 0
        second = SweepRunner(jobs=1, store=store).run(TINY)
        assert second.cached_cells == len(TINY)
        assert [c.metrics for c in second.cells] == [
            c.metrics for c in first.cells
        ]
        # Cached cells preserve the original compute wall time.
        assert [c.wall_time for c in second.cells] == [
            c.wall_time for c in first.cells
        ]
        assert store.stats()["hits"] == len(TINY)

    def test_store_is_shared_across_worker_counts(self, tmp_path):
        store = ResultStore(tmp_path)
        SweepRunner(jobs=2, store=store).run(TINY)
        again = SweepRunner(jobs=1, store=store).run(TINY)
        assert again.cached_cells == len(TINY)

    def test_session_observers_stream_in_serial_mode(self):
        from repro.api import EventCounter

        live = EventCounter()
        SweepRunner(jobs=1, session_observers=[live]).run(TINY)
        # Two cells x two renditions x four jobs each.
        assert live.completions == 2 * 2 * 4


class TestWorkerErrorPropagation:
    HOPELESS = Sweep.over(
        seeds=1, workloads=["fs"], num_jobs=[4], nodes=[8],
        max_sim_time=1.0,  # nothing can finish by t=1
    )

    def test_serial_timeout_surfaces(self):
        with pytest.raises(SimulationTimeout) as exc_info:
            SweepRunner(jobs=1).run(self.HOPELESS)
        assert exc_info.value.max_sim_time == 1.0

    def test_pool_timeout_surfaces_with_payload(self):
        """The regression: a worker's SimulationTimeout must cross the
        process boundary with its diagnostic payload intact."""
        with pytest.raises(SimulationTimeout) as exc_info:
            SweepRunner(jobs=2).run(self.HOPELESS)
        exc = exc_info.value
        assert exc.max_sim_time == 1.0
        assert isinstance(exc.pending_job_ids, tuple)
        assert exc.unsubmitted + len(exc.pending_job_ids) + len(
            exc.running_job_ids
        ) > 0

    def test_failed_cell_stores_nothing(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(SimulationTimeout):
            SweepRunner(jobs=1, store=store).run(self.HOPELESS)
        assert store.entries() == []

    def test_completed_siblings_are_persisted_despite_a_failure(self, tmp_path):
        """A worker failure must not discard siblings that finished:
        their payloads land in the store before the error surfaces."""
        good = Sweep.over(seeds=1, workloads=["fs"], num_jobs=[4], nodes=[8])
        mixed = Sweep(cells=good.cells + self.HOPELESS.cells)
        store = ResultStore(tmp_path)
        with pytest.raises(SimulationTimeout):
            SweepRunner(jobs=2, store=store).run(mixed)
        (entry,) = store.entries()
        assert entry.spec["max_sim_time"] is None  # the good cell
        # A re-run of the good cell alone is now a pure cache hit.
        again = SweepRunner(jobs=1, store=store).run(good)
        assert again.cached_cells == 1


class TestSweepTelemetry:
    def test_serial_cells_carry_child_correlated_spans(self):
        from repro.obs.spans import TelemetryConfig

        runner = SweepRunner(
            jobs=1, telemetry=TelemetryConfig(correlation_id="sweep")
        )
        result = runner.run(TINY)
        for index, cell in enumerate(result.cells):
            names = {span["name"] for span in cell.spans}
            assert "sweep.cell" in names
            assert "sched.pass" in names
            cids = {span["cid"] for span in cell.spans}
            assert cids == {f"sweep/{index}"}
            renditions = {
                span.get("attrs", {}).get("rendition")
                for span in cell.spans
                if span["name"] != "sweep.cell"
            }
            assert renditions == {"fixed", "flexible"}

    def test_pool_spans_match_serial(self):
        from repro.obs.spans import TelemetryConfig

        config = TelemetryConfig(correlation_id="sweep")
        serial = SweepRunner(jobs=1, telemetry=config).run(TINY)
        pooled = SweepRunner(jobs=2, telemetry=config).run(TINY)
        for a, b in zip(serial.cells, pooled.cells):
            names = lambda cell: sorted(
                s["name"] for s in cell.spans if s["name"] != "sweep.cell"
            )
            assert names(a) == names(b)

    def test_no_telemetry_means_no_spans(self):
        result = SweepRunner(jobs=1).run(TINY)
        assert all(cell.spans == () for cell in result.cells)

    def test_cached_replay_preserves_spans(self, tmp_path):
        from repro.obs.spans import TelemetryConfig

        store = ResultStore(tmp_path)
        config = TelemetryConfig(correlation_id="sweep")
        first = SweepRunner(jobs=1, store=store, telemetry=config).run(TINY)
        second = SweepRunner(jobs=1, store=store, telemetry=config).run(TINY)
        assert second.cached_cells == len(TINY)
        assert [len(c.spans) for c in second.cells] == [
            len(c.spans) for c in first.cells
        ]
