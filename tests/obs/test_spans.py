"""Tests for spans, telemetry recorders and correlation configs."""

import pickle

import pytest

from repro.obs.spans import (
    CLOCK_SIM,
    CLOCK_WALL,
    DEFAULT_MAX_SPANS,
    Span,
    Telemetry,
    TelemetryConfig,
)


class TestTelemetryConfig:
    def test_defaults(self):
        config = TelemetryConfig()
        assert config.correlation_id is None
        assert config.max_spans == DEFAULT_MAX_SPANS

    def test_rejects_non_positive_buffer(self):
        with pytest.raises(ValueError):
            TelemetryConfig(max_spans=0)

    def test_child_scopes_the_id(self):
        parent = TelemetryConfig(correlation_id="sweep")
        assert parent.child(3).correlation_id == "sweep/3"
        assert parent.child(3).child("fixed").correlation_id == "sweep/3/fixed"

    def test_child_of_anonymous_config(self):
        assert TelemetryConfig().child(7).correlation_id == "7"

    def test_child_keeps_buffer_bound(self):
        assert TelemetryConfig(max_spans=5).child(0).max_spans == 5

    def test_picklable(self):
        # The config must cross ProcessPoolExecutor boundaries intact.
        config = TelemetryConfig(correlation_id="pool/2", max_spans=99)
        assert pickle.loads(pickle.dumps(config)) == config


class TestSpan:
    def test_duration_and_instant(self):
        assert Span("a", 1.0, 3.5).duration == pytest.approx(2.5)
        assert not Span("a", 1.0, 3.5).instant
        assert Span("b", 2.0, None).instant
        assert Span("b", 2.0, None).duration == 0.0

    def test_dict_round_trip(self):
        span = Span("sched.pass", 10.0, 12.0, CLOCK_SIM, "scheduler",
                    {"jobs": 4})
        back = Span.from_dict(span.as_dict())
        assert back.as_dict() == span.as_dict()

    def test_as_dict_omits_empty_attrs(self):
        assert "attrs" not in Span("a", 0.0, 1.0).as_dict()
        assert Span("a", 0.0, 1.0, attrs={"k": 1}).as_dict()["attrs"] == {
            "k": 1
        }

    def test_from_dict_defaults(self):
        span = Span.from_dict({"name": "x", "start": 1.0, "end": None})
        assert span.clock == CLOCK_SIM
        assert span.track == "main"
        assert span.instant


class TestTelemetry:
    def test_record_and_counts(self):
        telemetry = Telemetry()
        telemetry.record("sched.pass", 0.0, 1.0, track="scheduler")
        telemetry.record("sched.pass", 1.0, 2.0, track="scheduler")
        telemetry.instant("fault.inject", 5.0, track="faults", node=3)
        assert telemetry.counts_by_name() == {
            "sched.pass": 2, "fault.inject": 1
        }
        assert telemetry.spans[2].attrs == {"node": 3}

    def test_bounded_buffer_counts_drops(self):
        telemetry = Telemetry(TelemetryConfig(max_spans=2))
        for i in range(5):
            telemetry.record("s", float(i), float(i) + 1)
        assert len(telemetry.spans) == 2
        assert telemetry.dropped == 3

    def test_wall_span_uses_wall_clock(self):
        telemetry = Telemetry()
        with telemetry.wall_span("serve.request", route="GET /health"):
            pass
        (span,) = telemetry.spans
        assert span.clock == CLOCK_WALL
        assert span.end >= span.start
        assert span.attrs["route"] == "GET /health"

    def test_wall_span_records_on_exception(self):
        telemetry = Telemetry()
        with pytest.raises(RuntimeError):
            with telemetry.wall_span("boom"):
                raise RuntimeError("x")
        assert telemetry.counts_by_name() == {"boom": 1}

    def test_as_dicts_tags_correlation_id(self):
        telemetry = Telemetry(TelemetryConfig(correlation_id="job-1"))
        telemetry.record("a", 0.0, 1.0)
        assert telemetry.as_dicts()[0]["cid"] == "job-1"
        anonymous = Telemetry()
        anonymous.record("a", 0.0, 1.0)
        assert "cid" not in anonymous.as_dicts()[0]

    def test_extend_from_dicts_round_trip(self):
        worker = Telemetry(TelemetryConfig(correlation_id="pool/0"))
        worker.record("sweep.cell", 0.0, 2.0, CLOCK_WALL, track="sweep")
        parent = Telemetry(TelemetryConfig(correlation_id="pool"))
        parent.extend_from_dicts(worker.as_dicts())
        (span,) = parent.spans
        assert span.name == "sweep.cell"
        assert span.attrs["cid"] == "pool/0"

    def test_extend_from_dicts_respects_bound(self):
        parent = Telemetry(TelemetryConfig(max_spans=1))
        parent.extend_from_dicts(
            [{"name": "a", "start": 0.0, "end": 1.0} for _ in range(3)]
        )
        assert len(parent.spans) == 1
        assert parent.dropped == 2
