"""Tests for the repro.obs telemetry package."""
