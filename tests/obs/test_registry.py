"""Tests for the metrics registry, exposition and publish bridges."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.registry import (
    Counter,
    Gauge,
    LatencyHistogram,
    MetricsRegistry,
    default_registry,
    parse_prometheus,
    publish_event_counts,
    publish_sched_stats,
    publish_store_stats,
)

durations = st.floats(
    min_value=0.0, max_value=1e4, allow_nan=False, allow_infinity=False
)


class TestScalars:
    def test_counter_only_goes_up(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == pytest.approx(3.5)
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_goes_both_ways(self):
        gauge = Gauge()
        gauge.set(5)
        gauge.inc()
        gauge.dec(3)
        assert gauge.value == pytest.approx(3.0)


class TestFamilies:
    def test_labels_get_or_create(self):
        registry = MetricsRegistry()
        family = registry.counter("repro_x_total", labels=("route",))
        child = family.labels(route="GET /health")
        assert family.labels(route="GET /health") is child
        family.inc(route="GET /health")
        family.inc(route="GET /metrics")
        assert len(list(family.samples())) == 2

    def test_label_name_mismatch_rejected(self):
        registry = MetricsRegistry()
        family = registry.counter("repro_x_total", labels=("route",))
        with pytest.raises(ValueError):
            family.labels(method="GET")

    def test_re_registration_must_agree(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", labels=("route",))
        assert registry.counter("repro_x_total", labels=("route",))
        with pytest.raises(ValueError):
            registry.gauge("repro_x_total", labels=("route",))
        with pytest.raises(ValueError):
            registry.counter("repro_x_total", labels=("method",))


class TestSnapshotDiff:
    def test_snapshot_and_diff(self):
        registry = MetricsRegistry()
        registry.counter("repro_a_total").inc()
        before = registry.snapshot()
        registry.counter("repro_a_total").inc(2)
        registry.histogram("repro_lat_seconds").observe(0.5)
        delta = MetricsRegistry.diff(before, registry.snapshot())
        assert delta["repro_a_total"] == pytest.approx(2.0)
        assert delta["repro_lat_seconds_count"] == pytest.approx(1.0)
        assert delta["repro_lat_seconds_sum"] == pytest.approx(0.5)

    def test_failing_collector_is_counted_not_fatal(self):
        registry = MetricsRegistry()

        def bad(_registry):
            raise RuntimeError("scrape-time bug")

        registry.register_collector(bad)
        snap = registry.snapshot()
        assert snap["repro_collector_errors_total"] == 1.0
        assert registry.snapshot()["repro_collector_errors_total"] == 2.0

    def test_collector_runs_at_render_time(self):
        registry = MetricsRegistry()
        registry.register_collector(
            lambda r: r.gauge("repro_up").set(1)
        )
        assert "repro_up 1" in registry.render_prometheus()


class TestExposition:
    def test_render_parses_back(self):
        registry = MetricsRegistry()
        registry.counter(
            "repro_http_requests_total", "Requests.", labels=("route",)
        ).inc(route='GET "/x"\nweird')
        registry.gauge("repro_queue_depth", "Depth.").set(3)
        registry.histogram("repro_lat_seconds", labels=("route",)).observe(
            0.01, route="GET /x"
        )
        text = registry.render_prometheus()
        samples, types = parse_prometheus(text)
        assert types["repro_http_requests_total"] == "counter"
        assert types["repro_lat_seconds"] == "histogram"
        assert samples["repro_queue_depth"] == 3.0
        assert any(
            name.startswith("repro_lat_seconds_bucket{") for name in samples
        )

    def test_childless_family_still_has_type_line(self):
        registry = MetricsRegistry()
        registry.counter("repro_observer_errors_total", "Observer errors.")
        _, types = parse_prometheus(registry.render_prometheus())
        assert types["repro_observer_errors_total"] == "counter"

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "repro_lat_seconds", first_bound=1.0, buckets=2
        )
        for value in (0.5, 0.6, 1.5):
            hist.observe(value)
        samples, _ = parse_prometheus(registry.render_prometheus())
        assert samples['repro_lat_seconds_bucket{le="1"}'] == 2.0
        assert samples['repro_lat_seconds_bucket{le="2"}'] == 3.0
        assert samples['repro_lat_seconds_bucket{le="+Inf"}'] == 3.0
        assert samples["repro_lat_seconds_count"] == 3.0

    def test_parser_rejects_malformed_lines(self):
        for bad in ("no_value_here", "1leading_digit 3", "unbalanced{a=\"x\" 1",
                    "name not_a_number"):
            with pytest.raises(ValueError):
                parse_prometheus(bad)

    def test_default_registry_is_a_singleton(self):
        assert default_registry() is default_registry()


class TestPublishBridges:
    def test_publish_sched_stats(self):
        registry = MetricsRegistry()
        publish_sched_stats(registry, {"fifo_passes": 3, "key_evals": 10,
                                       "irrelevant": 7})
        snap = registry.snapshot()
        assert snap['repro_sched_ops_total{op="fifo_passes"}'] == 3.0
        assert snap['repro_sched_ops_total{op="key_evals"}'] == 10.0
        assert not any("irrelevant" in key for key in snap)

    def test_publish_event_counts(self):
        registry = MetricsRegistry()
        publish_event_counts(registry, {"on_job_end": 4, "on_resize": 0})
        snap = registry.snapshot()
        assert snap['repro_session_events_total{hook="on_job_end"}'] == 4.0
        assert 'repro_session_events_total{hook="on_resize"}' not in snap

    def test_publish_store_stats_uses_deltas(self):
        registry = MetricsRegistry()
        publish_store_stats(
            registry,
            {"hits": 1, "misses": 2, "puts": 2},
            {"hits": 4, "misses": 2, "puts": 5},
        )
        snap = registry.snapshot()
        assert snap['repro_store_lookups_total{result="hit"}'] == 3.0
        assert 'repro_store_lookups_total{result="miss"}' not in snap
        assert snap["repro_store_puts_total"] == 3.0


class TestHistogramProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(durations, min_size=0, max_size=200))
    def test_as_dict_round_trip_is_lossless(self, values):
        hist = LatencyHistogram()
        for value in values:
            hist.observe(value)
        data = json.loads(json.dumps(hist.as_dict()))
        back = LatencyHistogram.from_dict(data)
        assert back.counts == hist.counts
        assert back.count == hist.count
        assert back.total == pytest.approx(hist.total)
        assert back.min == hist.min and back.max == hist.max
        # A round-tripped histogram keeps reporting the same quantiles.
        for q in (0.0, 0.5, 0.99, 1.0):
            assert back.quantile(q) == pytest.approx(hist.quantile(q))

    @settings(max_examples=50, deadline=None)
    @given(st.lists(durations, min_size=1, max_size=200),
           st.floats(min_value=0.0, max_value=1.0))
    def test_quantile_never_leaves_observed_range(self, values, q):
        hist = LatencyHistogram()
        for value in values:
            hist.observe(value)
        estimate = hist.quantile(q)
        assert hist.min <= estimate <= hist.max

    @settings(max_examples=50, deadline=None)
    @given(st.lists(durations, min_size=0, max_size=100),
           st.lists(durations, min_size=0, max_size=100))
    def test_merge_equals_union(self, xs, ys):
        a, b, union = (LatencyHistogram() for _ in range(3))
        for value in xs:
            a.observe(value)
        for value in ys:
            b.observe(value)
        for value in xs + ys:
            union.observe(value)
        assert a.merge(b) is a
        assert a.counts == union.counts
        assert a.count == union.count
        assert a.total == pytest.approx(union.total)
        assert a.min == union.min and a.max == union.max

    def test_merge_with_itself_doubles(self):
        hist = LatencyHistogram()
        for value in (0.001, 0.1, 5.0):
            hist.observe(value)
        hist.merge(hist)
        assert hist.count == 6
        assert hist.total == pytest.approx(2 * (0.001 + 0.1 + 5.0))
        assert hist.min == pytest.approx(0.001)
        assert hist.max == pytest.approx(5.0)

    def test_merge_into_empty_copies_extrema(self):
        empty, full = LatencyHistogram(), LatencyHistogram()
        full.observe(0.25)
        empty.merge(full)
        assert (empty.min, empty.max, empty.count) == (0.25, 0.25, 1)

    def test_from_dict_rejects_corrupt_payloads(self):
        good = LatencyHistogram()
        good.observe(0.1)
        data = good.as_dict()
        broken = dict(data)
        broken["count"] = 99
        with pytest.raises(ValueError):
            LatencyHistogram.from_dict(broken)
        broken = dict(data)
        broken["bucket_counts"] = data["bucket_counts"][:-1]
        with pytest.raises(ValueError):
            LatencyHistogram.from_dict(broken)
        broken = dict(data)
        broken["bucket_bounds_s"] = [0.0] + list(data["bucket_bounds_s"])[1:]
        with pytest.raises(ValueError):
            LatencyHistogram.from_dict(broken)

    def test_legacy_ms_only_payloads_still_load(self):
        hist = LatencyHistogram()
        hist.observe(0.05)
        data = hist.as_dict()
        legacy = {
            key: value for key, value in data.items()
            if key not in ("bucket_bounds_s", "min_s", "max_s", "sum_s")
        }
        legacy["sum_s"] = data["sum_s"]
        back = LatencyHistogram.from_dict(legacy)
        assert back.count == 1
        assert back.min == pytest.approx(0.05)
