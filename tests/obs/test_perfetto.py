"""Tests for the Chrome trace-event exporter and validator."""

import json

import pytest

from repro.errors import TelemetryError
from repro.metrics.trace import EventKind, Trace
from repro.obs.perfetto import (
    PerfettoTraceWriter,
    export_perfetto,
    spans_from_trace,
    validate_trace_file,
)
from repro.obs.spans import CLOCK_WALL, Span


def make_trace():
    tr = Trace()
    tr.record(0.0, EventKind.JOB_SUBMIT, 1)
    tr.record(1.0, EventKind.JOB_START, 1)
    tr.record(2.0, EventKind.RESIZE_DECISION, 1, action="expand")
    tr.record(3.0, EventKind.RESIZE_EXPAND, 1, nodes=4)
    tr.record(4.0, EventKind.NODE_FAIL, node=2)
    tr.record(5.0, EventKind.JOB_REQUEUE, 1)
    tr.record(6.0, EventKind.JOB_START, 1)
    tr.record(9.0, EventKind.JOB_END, 1)
    tr.record(9.5, EventKind.NODE_RECOVER, node=2)
    return tr


class TestSpansFromTrace:
    def test_run_windows_per_incarnation(self):
        spans = spans_from_trace(make_trace())
        runs = [s for s in spans if s.name == "job.run"]
        assert [(s.start, s.end) for s in runs] == [(1.0, 5.0), (6.0, 9.0)]
        assert runs[0].attrs["outcome"] == EventKind.JOB_REQUEUE.value
        assert runs[1].attrs["outcome"] == EventKind.JOB_END.value

    def test_decision_to_ack_interval(self):
        spans = spans_from_trace(make_trace())
        (ack,) = [s for s in spans if s.name == "resize.decision_to_ack"]
        assert (ack.start, ack.end) == (2.0, 3.0)
        assert ack.attrs["ack"] == EventKind.RESIZE_EXPAND.value
        assert ack.attrs["action"] == "expand"

    def test_faults_land_on_their_own_track(self):
        spans = spans_from_trace(make_trace())
        faults = [s for s in spans if s.name.startswith("fault.")]
        assert {s.track for s in faults} == {"faults"}
        assert {s.name for s in faults} == {
            "fault.node_fail", "fault.node_recover"
        }

    def test_open_run_becomes_instant(self):
        tr = Trace()
        tr.record(0.0, EventKind.JOB_START, 7)
        (span,) = [
            s for s in spans_from_trace(tr)
            if s.name == "job.running_at_end"
        ]
        assert span.instant and span.track == "job 7"


class TestWriter:
    def test_streaming_writer_emits_valid_json(self, tmp_path):
        path = str(tmp_path / "t.json")
        with PerfettoTraceWriter(path) as writer:
            writer.write({"ph": "M", "name": "process_name", "pid": 1,
                          "tid": 0, "args": {"name": "p"}})
            writer.write({"ph": "i", "name": "x", "pid": 1, "tid": 1,
                          "ts": 0.0, "s": "t"})
        with open(path) as fh:
            data = json.load(fh)
        assert [e["ph"] for e in data] == ["M", "i"]

    def test_empty_writer_is_still_an_array(self, tmp_path):
        path = str(tmp_path / "empty.json")
        PerfettoTraceWriter(path).close()
        with open(path) as fh:
            assert json.load(fh) == []

    def test_write_after_close_raises(self, tmp_path):
        writer = PerfettoTraceWriter(str(tmp_path / "t.json"))
        writer.close()
        with pytest.raises(TelemetryError):
            writer.write({})


class TestExport:
    def test_empty_export_raises(self, tmp_path):
        with pytest.raises(TelemetryError):
            export_perfetto(str(tmp_path / "t.json"))

    def test_export_and_validate(self, tmp_path):
        path = str(tmp_path / "t.json")
        spans = [
            Span("sched.pass", 0.0, 1.0, track="scheduler", attrs={"jobs": 2}),
            Span("sched.pass", 1.0, 2.0, track="scheduler"),
            Span("fault.inject", 1.5, None, track="faults"),
        ]
        info = export_perfetto(path, spans=spans, trace=make_trace(),
                               correlation_id="t-1", dropped=3)
        assert info["dropped_spans"] == 3
        summary = validate_trace_file(path)
        assert summary["events"] == info["events"]
        assert summary["names"]["sched.pass"] == 2
        assert "job 1" in summary["track_names"]
        assert "scheduler" in summary["track_names"]

    def test_correlation_id_lands_in_args(self, tmp_path):
        path = str(tmp_path / "t.json")
        export_perfetto(path, spans=[Span("a", 0.0, 1.0)],
                        correlation_id="cid-9")
        with open(path) as fh:
            data = json.load(fh)
        slices = [e for e in data if e["ph"] == "X"]
        assert slices[0]["args"]["cid"] == "cid-9"

    def test_wall_spans_rebase_to_zero_on_their_own_pid(self, tmp_path):
        path = str(tmp_path / "t.json")
        t0 = 1.7e9  # a Unix epoch
        export_perfetto(path, spans=[
            Span("sim.a", 5.0, 6.0),
            Span("wall.a", t0, t0 + 2.0, CLOCK_WALL, track="serve"),
        ])
        with open(path) as fh:
            slices = [e for e in json.load(fh) if e["ph"] == "X"]
        by_name = {e["name"]: e for e in slices}
        assert by_name["sim.a"]["pid"] != by_name["wall.a"]["pid"]
        assert by_name["wall.a"]["ts"] == 0.0  # rebased, not an epoch
        assert by_name["sim.a"]["ts"] == pytest.approx(5.0 * 1e6)

    def test_tracks_sorted_and_monotonic(self, tmp_path):
        path = str(tmp_path / "t.json")
        # Deliberately record out of order; export must sort per track.
        export_perfetto(path, spans=[
            Span("b", 9.0, 10.0, track="scheduler"),
            Span("a", 1.0, 2.0, track="scheduler"),
        ])
        summary = validate_trace_file(path)
        assert summary["by_phase"]["X"] == 2


class TestValidator:
    def test_rejects_non_array(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"traceEvents": []}')
        with pytest.raises(TelemetryError):
            validate_trace_file(str(path))

    def test_rejects_empty(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[]")
        with pytest.raises(TelemetryError):
            validate_trace_file(str(path))

    def test_rejects_backwards_time_within_a_track(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps([
            {"ph": "i", "name": "a", "pid": 1, "tid": 1, "ts": 5.0, "s": "t"},
            {"ph": "i", "name": "b", "pid": 1, "tid": 1, "ts": 4.0, "s": "t"},
        ]))
        with pytest.raises(TelemetryError, match="backwards"):
            validate_trace_file(str(path))

    def test_allows_backwards_time_across_tracks(self, tmp_path):
        path = tmp_path / "ok.json"
        path.write_text(json.dumps([
            {"ph": "i", "name": "a", "pid": 1, "tid": 1, "ts": 5.0, "s": "t"},
            {"ph": "i", "name": "b", "pid": 1, "tid": 2, "ts": 4.0, "s": "t"},
        ]))
        assert validate_trace_file(str(path))["tracks"] == 2

    def test_rejects_slice_without_duration(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps([
            {"ph": "X", "name": "a", "pid": 1, "tid": 1, "ts": 1.0},
        ]))
        with pytest.raises(TelemetryError, match="dur"):
            validate_trace_file(str(path))

    def test_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json")
        with pytest.raises(TelemetryError, match="cannot load"):
            validate_trace_file(str(path))
