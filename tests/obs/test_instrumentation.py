"""End-to-end telemetry: sessions, engine spans, observer-error metrics."""

from repro.api import Session, SessionObserver, Telemetry, TelemetryConfig
from repro.cluster import marenostrum_preliminary
from repro.faults import FaultEvent, FaultKind, FaultPlan
from repro.obs.registry import default_registry
from repro.obs.spans import CLOCK_SIM
from repro.workload import FSWorkloadConfig, fs_workload

SMALL_FS = FSWorkloadConfig(steps=4)


def small_spec(num_jobs=4, seed=3):
    return fs_workload(num_jobs, seed=seed, config=SMALL_FS)


class TestSessionTelemetry:
    def test_off_by_default(self):
        session = Session(cluster=marenostrum_preliminary())
        result = session.run(small_spec())
        assert result.telemetry is None

    def test_with_telemetry_records_scheduler_passes(self):
        session = Session(cluster=marenostrum_preliminary()).with_telemetry(
            correlation_id="t-1"
        )
        result = session.run(small_spec())
        telemetry = result.telemetry
        assert isinstance(telemetry, Telemetry)
        assert telemetry.correlation_id == "t-1"
        passes = [s for s in telemetry.spans if s.name == "sched.pass"]
        assert passes
        assert {s.clock for s in passes} == {CLOCK_SIM}
        assert {s.track for s in passes} == {"scheduler"}
        # Sim start/end coincide for a pass; the wall cost is an attr.
        assert all(s.attrs["wall_us"] >= 0 for s in passes)

    def test_flexible_run_records_reconfigurations(self):
        session = Session(cluster=marenostrum_preliminary()).with_telemetry()
        result = session.run(small_spec(num_jobs=8), flexible=True)
        reconfigs = [
            s for s in result.telemetry.spans if s.name == "runtime.reconfig"
        ]
        assert reconfigs
        assert {s.attrs["action"] for s in reconfigs} <= {"expand", "shrink"}
        assert all(s.end >= s.start for s in reconfigs)

    def test_faulty_run_records_injections(self):
        plan = FaultPlan.scripted([
            FaultEvent(time=5.0, kind=FaultKind.NODE_FAIL, node=1),
            FaultEvent(time=50.0, kind=FaultKind.NODE_RECOVER, node=1),
        ])
        session = (
            Session(cluster=marenostrum_preliminary())
            .with_faults(plan)
            .with_telemetry(correlation_id="faulty")
        )
        result = session.run(small_spec(num_jobs=6), flexible=True)
        injections = [
            s for s in result.telemetry.spans if s.name == "fault.inject"
        ]
        assert len(injections) == 2
        assert all(s.instant for s in injections)
        assert {s.attrs["kind"] for s in injections} == {
            "node_fail", "node_recover"
        }

    def test_paired_runs_get_their_own_recorders(self):
        session = Session(cluster=marenostrum_preliminary()).with_telemetry(
            correlation_id="pair"
        )
        pair = session.run_paired(small_spec())
        assert pair.fixed.telemetry is not pair.flexible.telemetry
        assert pair.fixed.telemetry.correlation_id == "pair"
        assert pair.fixed.telemetry.counts_by_name()["sched.pass"] > 0
        assert pair.flexible.telemetry.counts_by_name()["sched.pass"] > 0

    def test_span_buffer_bound_applies(self):
        session = Session(cluster=marenostrum_preliminary()).with_telemetry(
            max_spans=3
        )
        result = session.run(small_spec(num_jobs=8), flexible=True)
        assert len(result.telemetry.spans) == 3
        assert result.telemetry.dropped > 0

    def test_telemetry_config_travels_on_the_spec(self):
        session = Session(cluster=marenostrum_preliminary()).with_telemetry(
            correlation_id="spec"
        )
        assert session.telemetry == TelemetryConfig(correlation_id="spec")
        spec = session.spec()
        assert spec.telemetry == session.telemetry
        assert spec.build().telemetry == session.telemetry


class TestObserverErrorMetrics:
    def test_observer_errors_reach_the_default_registry(self):
        class Faulty(SessionObserver):
            def on_complete(self, time, job):
                raise RuntimeError("subscriber went away")

        family = default_registry().counter(
            "repro_observer_errors_total", labels=("observer",)
        )
        before = family.labels(observer="Faulty").value
        session = Session(cluster=marenostrum_preliminary()).observe(Faulty())
        session.run(small_spec(num_jobs=3))
        after = family.labels(observer="Faulty").value
        assert after - before == 3.0
