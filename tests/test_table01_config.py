"""Table I of the paper: configuration parameters for the applications.

| app    | iterations | min | max | preferred | scheduling period |
|--------|-----------:|----:|----:|----------:|------------------:|
| FS     |         25 |   1 |  20 |         - |                 - |
| CG     |      10000 |   2 |  32 |         8 |              15 s |
| Jacobi |      10000 |   2 |  32 |         8 |              15 s |
| N-body |         25 |   1 |  16 |         1 |                 - |
"""

from repro.apps import conjugate_gradient, flexible_sleep, jacobi, nbody


def test_table1_fs():
    app = flexible_sleep(step_time=30.0, at_procs=4, steps=25)
    assert app.iterations == 25
    assert app.resize.min_procs == 1
    assert app.resize.max_procs == 20
    assert app.resize.preferred is None
    assert app.sched_period == 0.0
    assert app.resize.factor == 2


def test_table1_cg():
    app = conjugate_gradient()
    assert app.iterations == 10_000
    assert app.resize.min_procs == 2
    assert app.resize.max_procs == 32
    assert app.resize.preferred == 8
    assert app.sched_period == 15.0
    assert app.resize.factor == 2


def test_table1_jacobi():
    app = jacobi()
    assert app.iterations == 10_000
    assert app.resize.min_procs == 2
    assert app.resize.max_procs == 32
    assert app.resize.preferred == 8
    assert app.sched_period == 15.0
    assert app.resize.factor == 2


def test_table1_nbody():
    app = nbody()
    assert app.iterations == 25
    assert app.resize.min_procs == 1
    assert app.resize.max_procs == 16
    assert app.resize.preferred == 1
    assert app.sched_period == 0.0
    assert app.resize.factor == 2


def test_fs_workload_generator_uses_table1_defaults():
    from repro.workload import fs_workload

    app = fs_workload(1, seed=0).jobs[0].app_factory()
    assert app.iterations == 25
    assert app.resize.max_procs == 20
