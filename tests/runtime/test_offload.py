"""Tests for the OmpSs offload-semantics API (task/onto/taskwait)."""

import numpy as np
import pytest

from repro.errors import RuntimeAPIError
from repro.mpi import MPIExecutor, run_world
from repro.runtime import OffloadRegion, receive_offload


def test_offload_roundtrip():
    def child(ctx):
        data, resume_at = yield from receive_offload(ctx)
        return (data.tolist(), resume_at, ctx.rank)

    def parent(ctx):
        handler = yield ctx.spawn(2, child)
        region = OffloadRegion(ctx, handler)
        yield from region.task(0, np.array([1.0, 2.0]), resume_at=7)
        yield from region.task(1, np.array([3.0, 4.0]), resume_at=7)
        count = yield from region.taskwait()
        return count

    executor = MPIExecutor()
    world = executor.create_world(1, parent)
    results = executor.run()
    assert executor.world_results(world) == [2]
    assert results[1] == ([1.0, 2.0], 7, 0)
    assert results[2] == ([3.0, 4.0], 7, 1)


def test_offload_region_tracks_destinations():
    def child(ctx):
        yield from receive_offload(ctx)

    def parent(ctx):
        handler = yield ctx.spawn(2, child)
        region = OffloadRegion(ctx, handler)
        yield from region.task(1, "x")
        yield from region.task(0, "y")
        yield from region.taskwait()
        return region.offloaded

    assert run_world(1, parent)[0] == (1, 0)


def test_task_after_taskwait_rejected():
    def child(ctx):
        yield from receive_offload(ctx)

    def parent(ctx):
        handler = yield ctx.spawn(1, child)
        region = OffloadRegion(ctx, handler)
        yield from region.task(0, "x")
        yield from region.taskwait()
        with pytest.raises(RuntimeAPIError, match="closed"):
            yield from region.task(0, "again")

    run_world(1, parent)


def test_onto_requires_intercommunicator():
    def parent(ctx):
        with pytest.raises(RuntimeAPIError, match="intercommunicator"):
            OffloadRegion(ctx, handler="not-a-comm")
        yield ctx.barrier()

    run_world(1, parent)


def test_receive_offload_requires_parent():
    def orphan(ctx):
        with pytest.raises(RuntimeAPIError, match="MPI_COMM_NULL"):
            yield from receive_offload(ctx)

    run_world(1, orphan)
