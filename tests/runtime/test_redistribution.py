"""Tests for the Listing 3 redistribution planner."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RedistributionError
from repro.runtime import (
    plan_block_remap,
    plan_expand,
    plan_shrink,
    senders_and_receivers,
)


class TestExpandPlan:
    def test_factor2_mapping(self):
        plan = plan_expand(2, 4, total_bytes=400.0)
        # Old rank r offloads to new ranks 2r, 2r+1, 100 bytes each.
        pairs = {(t.src, t.dst): t.nbytes for t in plan.transfers}
        assert pairs == {
            (0, 0): 100.0,
            (0, 1): 100.0,
            (1, 2): 100.0,
            (1, 3): 100.0,
        }

    def test_all_data_moves_once(self):
        plan = plan_expand(4, 16, total_bytes=1600.0)
        assert plan.bytes_moved == pytest.approx(1600.0)

    def test_per_rank_balance(self):
        plan = plan_expand(4, 8, total_bytes=800.0)
        assert all(v == pytest.approx(200.0) for v in plan.bytes_out.values())
        assert all(v == pytest.approx(100.0) for v in plan.bytes_in.values())

    def test_non_multiple_rejected(self):
        with pytest.raises(RedistributionError):
            plan_expand(4, 6, 100.0)
        with pytest.raises(RedistributionError):
            plan_expand(4, 4, 100.0)
        with pytest.raises(RedistributionError):
            plan_expand(8, 4, 100.0)

    def test_validation(self):
        with pytest.raises(RedistributionError):
            plan_expand(0, 4, 100.0)
        with pytest.raises(RedistributionError):
            plan_expand(2, 4, -1.0)


class TestShrinkPlan:
    def test_listing3_sender_receiver_mapping(self):
        # 4 -> 2, factor 2: rank 0 sends to 1; rank 2 sends to 3.
        plan = plan_shrink(4, 2, total_bytes=400.0)
        pairs = {(t.src, t.dst): t.nbytes for t in plan.transfers}
        assert pairs == {(0, 1): 100.0, (2, 3): 100.0}

    def test_factor4_grouping(self):
        # 8 -> 2, factor 4: groups {0,1,2,3}->3 and {4,5,6,7}->7.
        plan = plan_shrink(8, 2, total_bytes=800.0)
        dsts = {t.dst for t in plan.transfers}
        assert dsts == {3, 7}
        assert plan.bytes_in[3] == pytest.approx(300.0)  # 3 senders x 100

    def test_only_senders_transfer(self):
        plan = plan_shrink(4, 2, total_bytes=400.0)
        # Receivers (ranks 1, 3) send nothing over the network.
        assert 1 not in plan.bytes_out
        assert 3 not in plan.bytes_out

    def test_moved_fraction(self):
        # Shrink p -> q moves (p-q)/p of the data across the network.
        plan = plan_shrink(16, 4, total_bytes=1600.0)
        assert plan.bytes_moved == pytest.approx(1600.0 * 12 / 16)

    def test_non_divisor_rejected(self):
        with pytest.raises(RedistributionError):
            plan_shrink(6, 4, 100.0)
        with pytest.raises(RedistributionError):
            plan_shrink(4, 8, 100.0)


class TestSendersReceivers:
    def test_partition(self):
        senders, receivers = senders_and_receivers(8, factor=4)
        assert senders == (0, 1, 2, 4, 5, 6)
        assert receivers == (3, 7)

    def test_every_rank_classified_once(self):
        senders, receivers = senders_and_receivers(12, factor=2)
        assert sorted(senders + receivers) == list(range(12))

    def test_validation(self):
        with pytest.raises(RedistributionError):
            senders_and_receivers(8, factor=1)
        with pytest.raises(RedistributionError):
            senders_and_receivers(7, factor=2)


class TestBlockRemap:
    def test_same_size_no_transfers(self):
        assert plan_block_remap(4, 4, 400.0).transfers == []

    def test_zero_bytes_no_transfers(self):
        assert plan_block_remap(2, 8, 0.0).transfers == []

    def test_non_multiple_resize(self):
        plan = plan_block_remap(2, 3, total_bytes=600.0)
        # New blocks of 200: rank0 keeps [0,200) locally; rank1 gets
        # [200,300) from old 0 and keeps [300,400) locally (same rank
        # index -> same node, no transfer); rank2 gets [400,600) from old 1.
        pairs = {(t.src, t.dst): t.nbytes for t in plan.transfers}
        assert pairs == {
            (0, 1): pytest.approx(100.0),
            (1, 2): pytest.approx(200.0),
        }

    @given(
        st.integers(min_value=1, max_value=24),
        st.integers(min_value=1, max_value=24),
    )
    @settings(max_examples=100, deadline=None)
    def test_property_remap_conserves_data(self, old, new):
        """Every new rank ends with exactly its block's bytes."""
        total = 240240.0  # divisible by many counts, avoids fp noise
        plan = plan_block_remap(old, new, total)
        if old == new:
            assert plan.transfers == []
            return
        received = plan.bytes_in
        for new_rank in range(new):
            block = total / new
            # Local (same-rank) data does not travel; compute the overlap
            # the rank already holds.
            lo, hi = new_rank * block, (new_rank + 1) * block
            o_lo, o_hi = new_rank * total / old, (new_rank + 1) * total / old
            local = max(0.0, min(hi, o_hi) - max(lo, o_lo)) if new_rank < old else 0.0
            assert received.get(new_rank, 0.0) + local == pytest.approx(block)
