"""Integration tests: NanosRuntime driving jobs through the full stack."""

import pytest

from repro.apps import AppModel, LinearScalability, flexible_sleep
from repro.cluster import ClusterConfig
from repro.core import ResizeRequest
from repro.errors import RuntimeAPIError
from repro.metrics import EventKind
from repro.sim import Environment
from repro.slurm import Job, JobClass, JobState, SlurmController
from repro.runtime import NanosRuntime, RuntimeConfig, install_runtime_launcher


def setup(nodes=20):
    env = Environment()
    cluster = ClusterConfig(num_nodes=nodes)
    machine = cluster.build_machine()
    ctl = SlurmController(env, machine)
    return env, cluster, machine, ctl


def fs_job(nodes, step_time=10.0, steps=2, name="fs", **fs_kw):
    app = flexible_sleep(step_time=step_time, at_procs=nodes, steps=steps, **fs_kw)
    return Job(
        name=name,
        num_nodes=nodes,
        time_limit=10_000.0,
        job_class=JobClass.MALLEABLE,
        resize_request=app.resize,
        payload=app,
    )


def rigid_job(nodes, step_time=10.0, steps=2, name="rigid"):
    app = AppModel(
        name="rigid-app",
        iterations=steps,
        serial_step_time=step_time * nodes,
        state_bytes=0.0,
        scalability=LinearScalability(),
    )
    return Job(
        name=name,
        num_nodes=nodes,
        time_limit=10_000.0,
        payload=app,
    )


class TestFixedExecution:
    def test_rigid_job_runs_to_completion(self):
        env, cluster, machine, ctl = setup()
        install_runtime_launcher(ctl, cluster)
        job = ctl.submit(rigid_job(4, step_time=10.0, steps=3))
        env.run()
        assert job.state is JobState.COMPLETED
        assert job.execution_time == pytest.approx(30.0)
        assert machine.used_count == 0

    def test_rigid_job_never_checks(self):
        env, cluster, _, ctl = setup()
        install_runtime_launcher(ctl, cluster)
        ctl.submit(rigid_job(4))
        env.run()
        assert ctl.trace.of_kind(EventKind.DMR_CHECK) == []

    def test_launcher_rejects_missing_payload(self):
        env, cluster, _, ctl = setup()
        install_runtime_launcher(ctl, cluster)
        ctl.submit(Job(name="bad", num_nodes=2, time_limit=10.0))
        with pytest.raises(RuntimeAPIError):
            env.run()


class TestMalleableExecution:
    def test_alone_job_expands_to_max(self):
        """An FS job alone on an idle cluster grows to its maximum."""
        env, cluster, machine, ctl = setup(nodes=20)
        install_runtime_launcher(ctl, cluster)
        job = ctl.submit(fs_job(4, step_time=40.0, steps=2))
        env.run()
        assert job.state is JobState.COMPLETED
        # 4 -> 16 via factor 2 (20 not reachable: 4*2^2=16, *2=32 > 20).
        assert [r[2] for r in job.resizes] == [16]
        expands = ctl.trace.of_kind(EventKind.RESIZE_EXPAND)
        assert len(expands) == 1

    def test_expand_shortens_execution(self):
        env, cluster, _, ctl = setup(nodes=16)
        install_runtime_launcher(ctl, cluster)
        flexible = ctl.submit(fs_job(4, step_time=40.0, steps=4, max_procs=16))
        env.run()
        flexible_time = flexible.execution_time

        env2, cluster2, _, ctl2 = setup(nodes=16)
        install_runtime_launcher(ctl2, cluster2)
        fixed = ctl2.submit(rigid_job(4, step_time=40.0, steps=4))
        env2.run()
        assert flexible_time < fixed.execution_time

    def test_shrink_frees_nodes_for_queued_job(self):
        env, cluster, machine, ctl = setup(nodes=16)
        install_runtime_launcher(ctl, cluster)
        # Flexible job takes the whole machine; a rigid job then queues.
        flex = ctl.submit(fs_job(16, step_time=30.0, steps=4, max_procs=16))
        env.run(until=1.0)
        queued = ctl.submit(rigid_job(8, step_time=5.0, steps=1))
        env.run()
        assert flex.state is JobState.COMPLETED
        assert queued.state is JobState.COMPLETED
        shrinks = ctl.trace.of_kind(EventKind.RESIZE_SHRINK)
        assert len(shrinks) >= 1
        # The queued job started before the flexible one finished.
        assert queued.start_time < flex.end_time

    def test_shrink_beneficiary_gets_boost(self):
        env, cluster, _, ctl = setup(nodes=16)
        install_runtime_launcher(ctl, cluster)
        ctl.submit(fs_job(16, step_time=30.0, steps=4))
        env.run(until=1.0)
        queued = ctl.submit(rigid_job(8, step_time=5.0, steps=1))
        env.run(until=40.0)
        assert queued.priority_boost == float("inf")

    def test_resize_costs_are_charged(self):
        """Expansion takes spawn + redistribution time, not zero."""
        env, cluster, _, ctl = setup(nodes=16)
        install_runtime_launcher(ctl, cluster)
        with_data = ctl.submit(
            fs_job(4, step_time=40.0, steps=2, max_procs=16, state_bytes=4e9)
        )
        env.run()
        t_with_data = with_data.execution_time

        env2, cluster2, _, ctl2 = setup(nodes=16)
        install_runtime_launcher(ctl2, cluster2)
        no_data = ctl2.submit(
            fs_job(4, step_time=40.0, steps=2, max_procs=16, state_bytes=0.0)
        )
        env2.run()
        assert t_with_data > no_data.execution_time

    def test_preferred_job_shrinks_to_preferred_when_queue_nonempty(self):
        env, cluster, _, ctl = setup(nodes=20)
        install_runtime_launcher(ctl, cluster)
        app = flexible_sleep(
            step_time=10.0, at_procs=16, steps=6, max_procs=16, preferred=4
        )
        job = Job(
            name="pref",
            num_nodes=16,
            time_limit=10_000.0,
            job_class=JobClass.MALLEABLE,
            resize_request=app.resize,
            payload=app,
        )
        ctl.submit(job)
        env.run(until=1.0)
        # A queued job that cannot start (needs 16, only 4 free).
        blocked = ctl.submit(rigid_job(16, step_time=1.0, steps=1))
        env.run(until=50.0)
        assert 4 in [r[2] for r in job.resizes]

    def test_check_count_and_inhibitor(self):
        env, cluster, _, ctl = setup(nodes=4)
        # Occupy everything so no resize is possible - checks still happen.
        install_runtime_launcher(ctl, cluster)
        job = ctl.submit(fs_job(4, step_time=2.0, steps=10, max_procs=4, min_procs=4))
        env.run()
        checks = ctl.trace.of_kind(EventKind.DMR_CHECK)
        assert len(checks) == 10  # one per iteration, no inhibitor

    def test_sched_period_inhibits_checks(self):
        env, cluster, _, ctl = setup(nodes=4)
        install_runtime_launcher(ctl, cluster)
        job = ctl.submit(
            fs_job(
                4,
                step_time=2.0,
                steps=10,
                max_procs=4,
                min_procs=4,
                sched_period=100.0,
            )
        )
        env.run()
        # Period 100 s >> runtime: every check inhibited.
        assert ctl.trace.of_kind(EventKind.DMR_CHECK) == []

    def test_sync_check_cost_slows_execution(self):
        env, cluster, _, ctl = setup(nodes=4)
        install_runtime_launcher(ctl, cluster, RuntimeConfig(check_cost=1.0))
        job = ctl.submit(fs_job(4, step_time=2.0, steps=10, max_procs=4, min_procs=4))
        env.run()
        # 10 steps x 2 s + 10 checks x 1 s.
        assert job.execution_time == pytest.approx(30.0)


class TestAsyncMode:
    def test_async_applies_decision_one_step_late(self):
        env, cluster, _, ctl = setup(nodes=16)
        install_runtime_launcher(ctl, cluster, RuntimeConfig(async_mode=True))
        job = ctl.submit(fs_job(4, step_time=10.0, steps=4, max_procs=16))
        env.run()
        assert job.state is JobState.COMPLETED
        expands = ctl.trace.of_kind(EventKind.RESIZE_EXPAND)
        assert len(expands) == 1
        # Decision negotiated at step-0 boundary (t=0) is applied at the
        # step-1 boundary (t=10), not immediately.
        assert expands[0].time >= 10.0

    def test_async_checks_do_not_block(self):
        env, cluster, _, ctl = setup(nodes=4)
        install_runtime_launcher(
            ctl, cluster, RuntimeConfig(async_mode=True, check_cost=5.0)
        )
        job = ctl.submit(fs_job(4, step_time=2.0, steps=10, max_procs=4, min_procs=4))
        env.run()
        # check_cost never charged in async mode.
        assert job.execution_time == pytest.approx(20.0)
