"""The OffloadHandler-driven redistribution entry points.

These are the seams the DMR core exposes to the runtime: the handler
returned by a resize selects the Listing 3 plan (``plan_for_handler``)
and the offload destinations (``listing3_destinations``).
"""

import pytest

from repro.core import OffloadHandler, ResizeAction
from repro.errors import RuntimeAPIError
from repro.mpi import run_world
from repro.runtime import (
    OffloadRegion,
    listing3_destinations,
    plan_for_handler,
    plan_for_resize,
    receive_offload,
)


class TestPlanForResize:
    def test_homogeneous_expand_uses_listing3_mapping(self):
        plan = plan_for_resize(2, 8, 800.0)
        assert plan.kind == "expand"
        assert {t.dst for t in plan.transfers} == set(range(8))

    def test_homogeneous_shrink_uses_listing3_mapping(self):
        plan = plan_for_resize(8, 2, 800.0)
        assert plan.kind == "shrink"
        # Only sender->receiver transfers cross the network.
        assert all(t.dst in (3, 7) for t in plan.transfers)

    def test_equal_sizes_migrate(self):
        assert plan_for_resize(4, 4, 400.0).kind == "migrate"

    def test_non_homogeneous_falls_back_to_remap(self):
        assert plan_for_resize(2, 3, 600.0).kind == "remap"
        assert plan_for_resize(3, 2, 600.0).kind == "remap"

    def test_matches_cr_baseline_selection(self):
        """The C/R comparison and the runtime must charge the same plan."""
        for old, new in ((4, 8), (8, 4), (4, 4), (4, 6), (6, 4)):
            direct = plan_for_resize(old, new, 1200.0)
            via_handler = plan_for_handler(
                OffloadHandler(ResizeAction.EXPAND if new > old else
                               ResizeAction.SHRINK if new < old else
                               ResizeAction.NO_ACTION,
                               old_procs=old, new_procs=new),
                1200.0,
            )
            assert direct.kind == via_handler.kind
            assert direct.bytes_moved == via_handler.bytes_moved


class TestListing3Destinations:
    def test_expand_partitions_across_factor(self):
        h = OffloadHandler(ResizeAction.EXPAND, old_procs=2, new_procs=6)
        assert listing3_destinations(h, 0) == (0, 1, 2)
        assert listing3_destinations(h, 1) == (3, 4, 5)

    def test_shrink_only_receivers_offload(self):
        h = OffloadHandler(ResizeAction.SHRINK, old_procs=6, new_procs=2)
        assert listing3_destinations(h, 0) == ()
        assert listing3_destinations(h, 2) == (0,)
        assert listing3_destinations(h, 5) == (1,)

    def test_migration_maps_namesakes(self):
        h = OffloadHandler(ResizeAction.NO_ACTION, old_procs=3, new_procs=3)
        assert listing3_destinations(h, 1) == (1,)

    def test_every_new_rank_is_covered_exactly_once(self):
        for old, new in ((2, 8), (8, 2), (4, 4)):
            action = (ResizeAction.EXPAND if new > old
                      else ResizeAction.SHRINK if new < old
                      else ResizeAction.NO_ACTION)
            h = OffloadHandler(action, old_procs=old, new_procs=new)
            covered = [d for r in range(old) for d in listing3_destinations(h, r)]
            assert sorted(covered) == list(range(new))

    def test_non_homogeneous_uses_block_overlap(self):
        h = OffloadHandler(ResizeAction.EXPAND, old_procs=2, new_procs=3)
        assert listing3_destinations(h, 0) == (0, 1)
        assert listing3_destinations(h, 1) == (1, 2)

    def test_non_homogeneous_covers_every_new_rank(self):
        for old, new in ((4, 6), (6, 4), (3, 7)):
            action = ResizeAction.EXPAND if new > old else ResizeAction.SHRINK
            h = OffloadHandler(action, old_procs=old, new_procs=new)
            covered = {d for r in range(old) for d in listing3_destinations(h, r)}
            assert covered == set(range(new))

    def test_rank_outside_old_set_rejected(self):
        h = OffloadHandler(ResizeAction.EXPAND, old_procs=2, new_procs=4)
        with pytest.raises(RuntimeAPIError, match="outside"):
            listing3_destinations(h, 2)


class TestRegionFromHandler:
    def test_simulated_handler_has_no_comm(self):
        def parent(ctx):
            h = OffloadHandler(ResizeAction.EXPAND, old_procs=1, new_procs=2,
                               nodes=(0, 1))
            with pytest.raises(RuntimeAPIError, match="no communicator"):
                OffloadRegion.from_handler(ctx, h)
            return "checked"
            yield  # pragma: no cover

        assert run_world(1, parent) == ["checked"]

    def test_offload_through_core_handler(self):
        def child(ctx):
            data, resume_at = yield from receive_offload(ctx)
            return (data, resume_at)

        def parent(ctx):
            intercomm = yield ctx.spawn(2, child)
            handler = OffloadHandler(
                ResizeAction.EXPAND, old_procs=1, new_procs=2,
                comm=intercomm,
            )
            region = OffloadRegion.from_handler(ctx, handler)
            for dest in listing3_destinations(handler, ctx.rank):
                yield from region.task(dest, f"block-{dest}", resume_at=5)
            count = yield from region.taskwait()
            return count

        assert run_world(1, parent)[0] == 2

    def test_from_handler_rejects_non_handler(self):
        def parent(ctx):
            with pytest.raises(RuntimeAPIError, match="OffloadHandler"):
                OffloadRegion.from_handler(ctx, object())
            return "checked"
            yield  # pragma: no cover

        assert run_world(1, parent) == ["checked"]
