"""Iteration batching must be an exact optimization.

The runtime coalesces iterations between reconfiguring points into one
timeout (essential for 10000-iteration CG jobs).  These tests prove the
coalescing is timing-transparent: a run with batching disabled produces
identical completion times, resize histories and decisions.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import flexible_sleep
from repro.cluster import ClusterConfig
from repro.metrics import EventKind
from repro.runtime import RuntimeConfig, install_runtime_launcher
from repro.runtime.nanos import NanosRuntime
from repro.sim import Environment
from repro.slurm import Job, JobClass, SlurmController


def run_workload(n_jobs, sched_period, steps, step_time, batching, seed_sizes):
    env = Environment()
    cluster = ClusterConfig(num_nodes=20)
    machine = cluster.build_machine()
    ctl = SlurmController(env, machine)
    install_runtime_launcher(ctl, cluster)

    if not batching:
        # Force one-iteration batches (the semantically obvious loop).
        original = NanosRuntime._batch_steps
        NanosRuntime._batch_steps = lambda self: (
            1 if (self.job.is_flexible and self.app.resize is not None)
            else self.app.remaining_steps
        )
    try:
        jobs = []
        for i, size in enumerate(seed_sizes[:n_jobs]):
            app = flexible_sleep(
                step_time=step_time,
                at_procs=size,
                steps=steps,
                sched_period=sched_period,
            )
            jobs.append(
                ctl.submit(
                    Job(
                        name=f"j{i}",
                        num_nodes=size,
                        time_limit=1e9,
                        job_class=JobClass.MALLEABLE,
                        resize_request=app.resize,
                        payload=app,
                    )
                )
            )
        env.run()
    finally:
        if not batching:
            NanosRuntime._batch_steps = original
    return jobs, ctl.trace


SIZES = (4, 7, 2, 10, 3, 5)


@pytest.mark.parametrize("sched_period", [0.0, 5.0, 12.0, 60.0])
def test_batched_and_stepwise_runs_identical(sched_period):
    a_jobs, a_trace = run_workload(4, sched_period, steps=20, step_time=3.0,
                                   batching=True, seed_sizes=SIZES)
    b_jobs, b_trace = run_workload(4, sched_period, steps=20, step_time=3.0,
                                   batching=False, seed_sizes=SIZES)
    for ja, jb in zip(a_jobs, b_jobs):
        assert ja.end_time == pytest.approx(jb.end_time, abs=1e-9)
        assert ja.resizes == pytest.approx(jb.resizes)
    # Same resize decisions in the same order.
    ka = [(e.time, e["action"]) for e in a_trace.of_kind(EventKind.RESIZE_DECISION)]
    kb = [(e.time, e["action"]) for e in b_trace.of_kind(EventKind.RESIZE_DECISION)]
    assert ka == pytest.approx(kb)


def test_batching_reduces_event_count():
    """With an armed inhibitor, batching must skip per-step DMR checks."""
    _, batched = run_workload(2, 30.0, steps=50, step_time=1.0,
                              batching=True, seed_sizes=SIZES)
    _, stepwise = run_workload(2, 30.0, steps=50, step_time=1.0,
                               batching=False, seed_sizes=SIZES)
    # Identical *serviced* checks...
    assert len(batched.of_kind(EventKind.DMR_CHECK)) == len(
        stepwise.of_kind(EventKind.DMR_CHECK)
    )


@given(
    period=st.sampled_from([0.0, 2.0, 7.5, 33.0]),
    steps=st.integers(min_value=2, max_value=15),
    step_time=st.floats(min_value=0.5, max_value=20.0),
)
@settings(max_examples=12, deadline=None)
def test_property_batching_transparent(period, steps, step_time):
    a_jobs, _ = run_workload(3, period, steps, step_time, True, SIZES)
    b_jobs, _ = run_workload(3, period, steps, step_time, False, SIZES)
    for ja, jb in zip(a_jobs, b_jobs):
        assert ja.end_time == pytest.approx(jb.end_time, rel=1e-12)
        assert [r[1:] for r in ja.resizes] == [r[1:] for r in jb.resizes]
