"""Serve over a non-sim execution backend (fake Slurm).

Boots a :class:`ServerThread` whose JobManager routes workloads through
the ``slurm`` backend, pointed at the hermetic ``fake_slurmd`` CLI, and
checks the HTTP surface reports the backend end to end.
"""

import asyncio
import shlex
import sys
import time

import pytest

from repro.backend.fake_slurmd import SPOOL_ENV
from repro.errors import ServeError
from repro.serve import ReproServer, ServerThread
from repro.serve.loadgen import request

HOST = "127.0.0.1"
DEADLINE = 60.0


def http(port, method, path, payload=None):
    return asyncio.run(request(HOST, port, method, path, payload))


def wait_terminal(port, job_id):
    deadline = time.monotonic() + DEADLINE
    while time.monotonic() < deadline:
        status, snap = http(port, "GET", f"/v1/jobs/{job_id}")
        assert status == 200
        if snap["state"] in ("COMPLETED", "FAILED", "CANCELLED"):
            return snap
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} did not finish within {DEADLINE}s")


@pytest.fixture()
def slurm_server(monkeypatch, tmp_path):
    monkeypatch.setenv(SPOOL_ENV, str(tmp_path / "spool"))
    for tool in ("sbatch", "scancel", "squeue", "sacct", "scontrol"):
        monkeypatch.setenv(
            f"REPRO_SLURM_{tool.upper()}",
            f"{shlex.quote(sys.executable)} -m repro.backend.fake_slurmd "
            f"{tool}",
        )
    thread = ServerThread(
        workers=1, backend="slurm",
        backend_options={"time_scale": 0.002, "poll_interval": 0.05},
    ).start()
    yield thread
    thread.stop()


def test_unknown_backend_is_rejected_at_construction():
    with pytest.raises(ServeError, match="unknown execution backend"):
        ReproServer(backend="pbs")


def test_health_reports_backend(slurm_server):
    status, health = http(slurm_server.port, "GET", "/health")
    assert status == 200
    assert health["backend"] == "slurm"


def test_workload_runs_over_fake_slurm(slurm_server):
    status, body = http(slurm_server.port, "POST", "/v1/workloads",
                        {"workload": "fs", "num_jobs": 2, "seed": 7})
    assert status in (200, 202)
    snap = wait_terminal(slurm_server.port, body["id"])
    assert snap["state"] == "COMPLETED"
    assert snap["result"]["backend"] == "slurm"
    assert snap["result"]["summary"]["num_jobs"] == 2
    assert snap["result"]["trace_events"] > 0
