"""Serve-side telemetry: Prometheus exposition and the telemetry route."""

import asyncio
import socket
import time

import pytest

from repro.obs.registry import parse_prometheus
from repro.serve import ServerThread
from repro.serve.loadgen import request

HOST = "127.0.0.1"
DEADLINE = 60.0


def http(port, method, path, payload=None):
    return asyncio.run(request(HOST, port, method, path, payload))


def scrape(port) -> str:
    """GET /metrics with no Accept header — the Prometheus-scraper path."""
    with socket.create_connection((HOST, port), timeout=30) as sock:
        sock.sendall(
            f"GET /metrics HTTP/1.1\r\nHost: {HOST}:{port}\r\n"
            f"Connection: close\r\n\r\n".encode("ascii")
        )
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    response = b"".join(chunks).decode("utf-8")
    head, _, body = response.partition("\r\n\r\n")
    assert " 200 " in head.splitlines()[0]
    assert "text/plain; version=0.0.4" in head
    return body


def wait_terminal(port, job_id):
    deadline = time.monotonic() + DEADLINE
    while time.monotonic() < deadline:
        status, snap = http(port, "GET", f"/v1/jobs/{job_id}")
        assert status == 200
        if snap["state"] in ("COMPLETED", "FAILED", "CANCELLED"):
            return snap
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} did not finish within {DEADLINE}s")


@pytest.fixture()
def server():
    thread = ServerThread(workers=2).start()
    yield thread
    thread.stop()


class TestPrometheusExposition:
    def test_scrape_parses_and_has_core_families(self, server):
        http(server.port, "GET", "/health")
        samples, types = parse_prometheus(scrape(server.port))
        assert types["repro_http_requests_total"] == "counter"
        assert types["repro_http_request_duration_seconds"] == "histogram"
        assert types["repro_observer_errors_total"] == "counter"
        assert types["repro_serve_uptime_seconds"] == "gauge"
        assert samples['repro_http_requests_total{route="GET /health"}'] >= 1
        assert any(
            name.startswith("repro_http_request_duration_seconds_bucket{")
            for name in samples
        )
        assert samples["repro_serve_uptime_seconds"] >= 0

    def test_scrape_reflects_job_lifecycle(self, server):
        status, body = http(
            server.port, "POST", "/v1/workloads",
            {"workload": "fs", "num_jobs": 2, "seed": 5},
        )
        assert status == 202
        wait_terminal(server.port, body["id"])
        samples, _ = parse_prometheus(scrape(server.port))
        assert samples["repro_serve_submissions_total"] >= 1
        assert samples['repro_serve_jobs{state="COMPLETED"}'] >= 1
        # The run published its scheduler tallies to the registry.
        assert any(
            name.startswith("repro_sched_ops_total{") for name in samples
        )

    def test_json_form_still_served_on_accept(self, server):
        status, metrics = http(server.port, "GET", "/metrics")
        assert status == 200
        assert "requests" in metrics and "jobs" in metrics


class TestTelemetryRoute:
    def test_workload_job_exposes_spans(self, server):
        status, body = http(
            server.port, "POST", "/v1/workloads",
            {"workload": "fs", "num_jobs": 2, "seed": 7},
        )
        assert status == 202
        job_id = body["id"]
        wait_terminal(server.port, job_id)
        status, payload = http(
            server.port, "GET", f"/v1/jobs/{job_id}/telemetry"
        )
        assert status == 200
        assert payload["correlation_id"] == job_id
        assert payload["recorded"] == len(payload["spans"]) > 0
        names = {span["name"] for span in payload["spans"]}
        assert "sched.pass" in names
        assert all(span["cid"] == job_id for span in payload["spans"])

    def test_sweep_job_exposes_cell_spans(self, server):
        status, body = http(
            server.port, "POST", "/v1/sweeps",
            {"workloads": ["fs"], "num_jobs": [2], "seeds": 1,
             "base_seed": 3},
        )
        assert status == 202
        job_id = body["id"]
        wait_terminal(server.port, job_id)
        status, payload = http(
            server.port, "GET", f"/v1/jobs/{job_id}/telemetry"
        )
        assert status == 200
        names = {span["name"] for span in payload["spans"]}
        assert "sweep.cell" in names
        cids = {span["cid"] for span in payload["spans"]}
        assert cids == {f"{job_id}/0"}

    def test_unknown_job_is_404(self, server):
        status, _ = http(server.port, "GET", "/v1/jobs/zz9/telemetry")
        assert status == 404
