"""Integration tests for the `repro serve` HTTP service.

Each test boots a real :class:`ServerThread` on an ephemeral port and
talks to it over actual sockets — the same path `repro loadgen` and CI
exercise, minus the subprocess.
"""

import asyncio
import json
import socket
import threading
import time

import pytest

from repro.metrics.trace import text_digest
from repro.serve import ServerThread
from repro.serve.loadgen import request, stream_events
from repro.store import ResultStore

HOST = "127.0.0.1"
DEADLINE = 60.0


def http(port, method, path, payload=None):
    return asyncio.run(request(HOST, port, method, path, payload))


def stream(port, job_id):
    return asyncio.run(stream_events(HOST, port, job_id))


def raw_http(port, data: bytes) -> bytes:
    """Fire raw bytes at the server and collect the whole response."""
    with socket.create_connection((HOST, port), timeout=30) as sock:
        sock.sendall(data)
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    return b"".join(chunks)


def wait_terminal(port, job_id):
    deadline = time.monotonic() + DEADLINE
    while time.monotonic() < deadline:
        status, snap = http(port, "GET", f"/v1/jobs/{job_id}")
        assert status == 200
        if snap["state"] in ("COMPLETED", "FAILED", "CANCELLED"):
            return snap
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} did not finish within {DEADLINE}s")


@pytest.fixture()
def server():
    thread = ServerThread(workers=2).start()
    yield thread
    thread.stop()


class TestBasics:
    def test_health_and_metrics(self, server):
        status, health = http(server.port, "GET", "/health")
        assert status == 200
        assert health["status"] == "ok"
        assert health["state"] == "serving"

        status, metrics = http(server.port, "GET", "/metrics")
        assert status == 200
        assert metrics["requests"]["total"] >= 1  # the /health above
        assert "GET /health" in metrics["requests"]["by_route"]
        assert metrics["requests"]["latency"]["count"] >= 1
        assert metrics["jobs"]["workers"] == 2

    def test_unknown_endpoint_is_404(self, server):
        status, body = http(server.port, "GET", "/nope")
        assert status == 404
        assert "no such endpoint" in body["error"]

    def test_wrong_method_is_405(self, server):
        status, body = http(server.port, "DELETE", "/health")
        assert status == 405

    def test_unknown_job_is_404(self, server):
        status, _ = http(server.port, "GET", "/v1/jobs/w999999")
        assert status == 404


class TestMalformedRequests:
    def test_garbage_request_line_is_400(self, server):
        response = raw_http(server.port, b"NONSENSE\r\n\r\n")
        assert response.startswith(b"HTTP/1.1 400 ")

    def test_malformed_json_body_is_400(self, server):
        body = b"{not json"
        response = raw_http(
            server.port,
            b"POST /v1/workloads HTTP/1.1\r\nContent-Length: "
            + str(len(body)).encode() + b"\r\n\r\n" + body,
        )
        assert response.startswith(b"HTTP/1.1 400 ")
        assert b"malformed JSON" in response

    @pytest.mark.parametrize("payload,fragment", [
        ({"workload": "zz"}, "must be one of"),
        ({"workload": "fs", "bogus": 1}, "unknown field"),
        ({"workload": "fs", "num_jobs": 0}, "must be in"),
        ({"workload": "fs", "num_jobs": True}, "must be an integer"),
        ({"workload": "fs", "flexible": "yes"}, "must be a boolean"),
        ({"workload": "swf"}, "SWF log text"),
    ])
    def test_validation_errors_are_400(self, server, payload, fragment):
        status, body = http(server.port, "POST", "/v1/workloads", payload)
        assert status == 400
        assert fragment in body["error"]

    def test_job_too_wide_for_cluster_is_400(self, server):
        status, body = http(
            server.port, "POST", "/v1/workloads",
            {"workload": "fs", "num_jobs": 4, "nodes": 1},
        )
        assert status == 400
        assert "cannot run" in body["error"]


class TestWorkloadLifecycle:
    def test_submit_stream_replay_and_digest(self, server):
        status, body = http(
            server.port, "POST", "/v1/workloads",
            {"workload": "fs", "num_jobs": 3, "seed": 11},
        )
        assert status == 202
        job_id = body["id"]
        assert body["events_url"] == f"/v1/jobs/{job_id}/events"

        frames = stream(server.port, job_id)
        done = frames[-1]
        assert done["event"] == "done"
        final = json.loads(done["data"])
        assert final["state"] == "COMPLETED"
        trace_lines = [f["data"] for f in frames if f.get("event") == "trace"]
        assert len(trace_lines) == final["events"]
        # SSE ids number the stream 0..n-1
        ids = [int(f["id"]) for f in frames if "id" in f]
        assert ids == list(range(len(trace_lines)))

        snap = wait_terminal(server.port, job_id)
        assert snap["state"] == "COMPLETED"
        assert snap["events"] == len(trace_lines)
        # Acceptance: the streamed events ARE the retained trace.
        assert (text_digest("\n".join(trace_lines))
                == snap["result"]["trace_digest"])

        # A late subscriber to the finished job replays the same stream.
        replay = stream(server.port, job_id)
        assert [f["data"] for f in replay] == [f["data"] for f in frames]

    def test_sse_response_headers(self, server):
        _, body = http(server.port, "POST", "/v1/workloads",
                       {"workload": "fs", "num_jobs": 2})
        response = raw_http(
            server.port,
            f"GET /v1/jobs/{body['id']}/events HTTP/1.1\r\n\r\n"
            .encode("ascii"),
        )
        head = response.partition(b"\r\n\r\n")[0]
        assert head.startswith(b"HTTP/1.1 200 OK")
        assert b"Content-Type: text/event-stream" in head
        assert b"event: done" in response

    def test_concurrent_submits_and_streams_lose_nothing(self, server):
        async def one(i):
            status, body = await request(
                HOST, server.port, "POST", "/v1/workloads",
                {"workload": "fs", "num_jobs": 3, "seed": 100 + i},
            )
            assert status == 202
            frames = await stream_events(HOST, server.port, body["id"])
            return body["id"], frames

        async def drive():
            return await asyncio.gather(*(one(i) for i in range(4)))

        for job_id, frames in asyncio.run(drive()):
            assert frames[-1]["event"] == "done"  # every stream terminated
            traces = [f for f in frames if f.get("event") == "trace"]
            snap = wait_terminal(server.port, job_id)
            assert snap["state"] == "COMPLETED"
            assert len(traces) == snap["events"]  # no event lost

        _, listing = http(server.port, "GET", "/v1/jobs")
        assert len(listing["jobs"]) == 4

    def test_failed_job_reports_error_and_stream_terminates(self, server):
        # Inject a job whose worker body must blow up (no workload spec):
        # the failure surfaces as FAILED + error, never a hung stream.
        manager = server.server.manager
        job = manager.submit_workload(
            {"workload": "fs", "num_jobs": 1, "seed": 1,
             "flexible": True, "nodes": 20},
            workload_spec=None,
        )
        snap = wait_terminal(server.port, job.id)
        assert snap["state"] == "FAILED"
        assert snap["error"]

        frames = stream(server.port, job.id)
        final = json.loads(frames[-1]["data"])
        assert final["state"] == "FAILED"
        assert final["error"]

    def test_events_for_sweep_job_is_400(self, server):
        status, body = http(
            server.port, "POST", "/v1/sweeps",
            {"workloads": ["fs"], "num_jobs": [2], "seeds": 1},
        )
        assert status == 202
        job_id = body["id"]
        response = raw_http(
            server.port,
            f"GET /v1/jobs/{job_id}/events HTTP/1.1\r\n\r\n".encode(),
        )
        assert response.startswith(b"HTTP/1.1 400 ")
        wait_terminal(server.port, job_id)


class TestBackpressure:
    def test_queue_full_is_429(self):
        thread = ServerThread(workers=1, queue_limit=1).start()
        try:
            release = threading.Event()
            started = threading.Event()

            def occupy():
                started.set()
                release.wait(DEADLINE)

            # Pin the only worker so submissions stay PENDING.
            thread.server.manager._executor.submit(occupy)
            assert started.wait(DEADLINE)

            status, first = http(
                thread.port, "POST", "/v1/workloads",
                {"workload": "fs", "num_jobs": 2},
            )
            assert status == 202

            status, body = http(
                thread.port, "POST", "/v1/workloads",
                {"workload": "fs", "num_jobs": 2},
            )
            assert status == 429
            assert "queue is full" in body["error"]

            release.set()
            snap = wait_terminal(thread.port, first["id"])
            assert snap["state"] == "COMPLETED"
        finally:
            release.set()
            thread.stop()

    def test_drain_refuses_then_resume_accepts(self, server):
        status, body = http(server.port, "POST", "/v1/admin/drain")
        assert status == 200
        assert body["state"] == "draining"

        status, body = http(server.port, "POST", "/v1/workloads",
                            {"workload": "fs", "num_jobs": 1})
        assert status == 503
        assert "draining" in body["error"]

        _, health = http(server.port, "GET", "/health")
        assert health["state"] == "draining"

        status, body = http(server.port, "POST", "/v1/admin/resume")
        assert status == 200
        assert body["state"] == "serving"
        status, _ = http(server.port, "POST", "/v1/workloads",
                         {"workload": "fs", "num_jobs": 1})
        assert status == 202

    def test_drain_finishes_inflight_sweep(self, server):
        """A drain never orphans background work (acceptance criterion)."""
        status, body = http(
            server.port, "POST", "/v1/sweeps",
            {"workloads": ["fs"], "num_jobs": [2], "seeds": 2},
        )
        assert status == 202
        job_id = body["id"]
        status, _ = http(server.port, "POST", "/v1/admin/drain")
        assert status == 200

        snap = wait_terminal(server.port, job_id)
        assert snap["state"] == "COMPLETED"
        assert snap["progress"] == {"done": 2, "total": 2}
        assert snap["result"]["cells"] == 2

        _, health = http(server.port, "GET", "/health")
        assert health["active"] == 0  # quiescent: nothing orphaned


class TestSweeps:
    def test_sweep_runs_and_reports_aggregate(self, server):
        status, body = http(
            server.port, "POST", "/v1/sweeps",
            {"workloads": ["fs"], "num_jobs": [2], "seeds": 2,
             "base_seed": 3},
        )
        assert status == 202
        snap = wait_terminal(server.port, body["id"])
        assert snap["state"] == "COMPLETED"
        assert snap["result"]["cells"] == 2
        assert "aggregate_csv" in snap["result"]

    @pytest.mark.parametrize("payload,fragment", [
        ({"workloads": ["zz"], "num_jobs": [2]}, "unknown workloads"),
        ({"workloads": ["fs"]}, "num_jobs"),
        ({"workloads": ["fs"], "num_jobs": [2], "policies": ["zz"]},
         "unknown policies"),
        ({"artifacts": ["nope"]}, "unknown artifacts"),
        ({"workloads": ["fs"], "num_jobs": "2"}, "list of integers"),
    ])
    def test_sweep_validation_errors(self, server, payload, fragment):
        status, body = http(server.port, "POST", "/v1/sweeps", payload)
        assert status == 400
        assert fragment in body["error"]


class TestLoadgen:
    def test_loadgen_cli_end_to_end(self, server, tmp_path):
        """`repro loadgen --quick --check` against a live server."""
        from repro.cli import main

        out = tmp_path / "bench.json"
        rc = main(["loadgen", "--port", str(server.port),
                   "--quick", "--check", "--out", str(out)])
        assert rc == 0
        report = json.loads(out.read_text())
        assert report["client"]["jobs_completed"] == 4
        assert report["client"]["requests_per_s"] > 0
        assert report["client"]["events_streamed"] > 0
        assert report["client"]["submit"]["p99_ms"] >= \
            report["client"]["submit"]["p50_ms"]
        assert report["drain"]["refused_with_503"]
        assert report["drain"]["drained_clean"]
        assert report["server"]["requests"]["total"] > 0
        # the drain check resumes, leaving the server serving
        _, health = http(server.port, "GET", "/health")
        assert health["state"] == "serving"

    def test_check_report_flags_failures(self):
        from repro.serve.loadgen import check_report

        bad = {
            "config": {"requests": 2},
            "client": {"requests_per_s": 0.0, "jobs_failed": 1,
                       "jobs_completed": 1, "events_streamed": 0},
            "drain": {"refused_with_503": False,
                      "submit_during_drain_status": 202,
                      "drained_clean": False, "active_after_drain": 3},
        }
        failures = check_report(bad)
        assert len(failures) == 6


class TestArtifacts:
    def test_listing_without_store(self, server):
        status, body = http(server.port, "GET", "/v1/artifacts")
        assert status == 200
        assert body["store"] is None

    def test_listing_and_render_with_store(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        thread = ServerThread(workers=1, store=store).start()
        try:
            status, body = http(thread.port, "GET", "/v1/artifacts")
            assert status == 200
            assert body["records"] == []
            assert body["stats"]["puts"] == 0

            status, _ = http(thread.port, "GET", "/v1/artifacts/nope")
            assert status == 404
            status, _ = http(thread.port, "GET", "/v1/artifacts/fig1?form=x")
            assert status == 400

            response = raw_http(
                thread.port, b"GET /v1/artifacts/fig1 HTTP/1.1\r\n\r\n"
            )
            head, _, text = response.partition(b"\r\n\r\n")
            assert head.startswith(b"HTTP/1.1 200 OK")
            assert b"Content-Type: text/plain" in head
            assert text  # the rendered figure

            # The render was persisted: the store now has records, via
            # the same listing the CLI's `cache ls --json` prints.
            status, body = http(thread.port, "GET", "/v1/artifacts")
            assert status == 200
            assert body["records"]
        finally:
            thread.stop()
