"""Unit tests for the HTTP/1.1 wire layer (:mod:`repro.serve.http`)."""

import asyncio
import json

import pytest

from repro.errors import ServeError
from repro.serve.http import (
    HttpError,
    MAX_BODY_BYTES,
    Request,
    SSE_HEADER,
    error_response,
    json_response,
    read_request,
    response_bytes,
    sse_frame,
)


def parse(data: bytes):
    """Run read_request over a pre-fed stream."""
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(go())


def parse_error(data: bytes) -> HttpError:
    with pytest.raises(HttpError) as excinfo:
        parse(data)
    return excinfo.value


class TestRequestParsing:
    def test_simple_get(self):
        req = parse(b"GET /health HTTP/1.1\r\nHost: x\r\n\r\n")
        assert req.method == "GET"
        assert req.path == "/health"
        assert req.headers["host"] == "x"
        assert req.body == b""

    def test_post_with_body_and_query(self):
        body = b'{"a": 1}'
        req = parse(
            b"POST /v1/x?seed=1&seed=2&form= HTTP/1.1\r\n"
            b"Content-Length: " + str(len(body)).encode() + b"\r\n\r\n" + body
        )
        assert req.body == body
        # last value wins; blank values are kept
        assert req.query == {"seed": "2", "form": ""}

    def test_percent_decoded_path(self):
        req = parse(b"GET /v1/jobs/a%20b HTTP/1.1\r\n\r\n")
        assert req.path == "/v1/jobs/a b"

    def test_clean_eof_is_none(self):
        assert parse(b"") is None

    def test_malformed_request_line(self):
        assert parse_error(b"GARBAGE\r\n\r\n").status == 400

    def test_unsupported_protocol(self):
        assert parse_error(b"GET / HTTP/2\r\n\r\n").status == 400

    def test_chunked_rejected(self):
        err = parse_error(
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
        )
        assert err.status == 501

    def test_malformed_header_line(self):
        assert parse_error(b"GET / HTTP/1.1\r\nnocolon\r\n\r\n").status == 400

    def test_bad_content_length(self):
        assert parse_error(
            b"POST / HTTP/1.1\r\nContent-Length: xyz\r\n\r\n"
        ).status == 400
        assert parse_error(
            b"POST / HTTP/1.1\r\nContent-Length: -5\r\n\r\n"
        ).status == 400

    def test_oversized_body_is_413(self):
        err = parse_error(
            b"POST / HTTP/1.1\r\nContent-Length: "
            + str(MAX_BODY_BYTES + 1).encode() + b"\r\n\r\n"
        )
        assert err.status == 413

    def test_body_shorter_than_content_length(self):
        err = parse_error(
            b"POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\nshort"
        )
        assert err.status == 400


class TestRequestJson:
    def test_valid_object(self):
        req = Request(method="POST", path="/", body=b'{"k": 1}')
        assert req.json() == {"k": 1}

    @pytest.mark.parametrize("body", [b"", b"{bad", b"[1, 2]", b'"str"'])
    def test_rejected_bodies_are_400(self, body):
        req = Request(method="POST", path="/", body=body)
        with pytest.raises(HttpError) as excinfo:
            req.json()
        assert excinfo.value.status == 400


class TestResponses:
    def test_framing(self):
        raw = response_bytes(200, b"hi", content_type="text/plain")
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Content-Length: 2" in head
        assert b"Connection: close" in head
        assert b"Content-Type: text/plain" in head
        assert body == b"hi"

    def test_json_response_is_sorted_and_newline_terminated(self):
        raw = json_response(202, {"b": 1, "a": 2})
        body = raw.partition(b"\r\n\r\n")[2]
        assert body == b'{"a": 2, "b": 1}\n'
        assert raw.startswith(b"HTTP/1.1 202 Accepted")

    def test_error_response_payload(self):
        body = error_response(429, "slow down").partition(b"\r\n\r\n")[2]
        assert json.loads(body) == {"error": "slow down", "status": 429}


class TestSse:
    def test_header_declares_event_stream(self):
        assert b"Content-Type: text/event-stream" in SSE_HEADER
        assert SSE_HEADER.endswith(b"\r\n\r\n")

    def test_full_frame(self):
        frame = sse_frame("payload", event="trace", event_id=7)
        assert frame == b"id: 7\nevent: trace\ndata: payload\n\n"

    def test_data_only_frame(self):
        assert sse_frame("x") == b"data: x\n\n"

    def test_multiline_data_rejected(self):
        with pytest.raises(ServeError):
            sse_frame("two\nlines")
        with pytest.raises(ServeError):
            sse_frame("cr\rline")
