"""The resilience artifact: C/R vs DMR under node failures."""

import pytest

from repro.experiments.resilience import (
    RESILIENCE_QUICK_MTBFS,
    ResilienceResult,
    run_resilience_quick,
)


@pytest.fixture(scope="module")
def quick_result() -> ResilienceResult:
    return run_resilience_quick()


class TestResilienceQuick:
    def test_fault_free_baselines_complete_everything(self, quick_result):
        for mechanism in ("cr", "dmr"):
            row = quick_result.row(None, mechanism)
            assert row.work_fraction == pytest.approx(1.0)
            assert row.drained
            assert row.failures == 0

    def test_dmr_completes_strictly_more_work_under_failures(self, quick_result):
        """The acceptance bar: shrink-to-survive beats rollback-restart."""
        mtbf = min(RESILIENCE_QUICK_MTBFS)
        cr = quick_result.row(mtbf, "cr")
        dmr = quick_result.row(mtbf, "dmr")
        assert cr.failures > 0  # the plan actually bit
        assert dmr.completed_work > cr.completed_work

    def test_mechanisms_saw_the_same_failures(self, quick_result):
        mtbf = min(RESILIENCE_QUICK_MTBFS)
        assert (
            quick_result.row(mtbf, "cr").failures
            == quick_result.row(mtbf, "dmr").failures
        )

    def test_mechanism_signatures(self, quick_result):
        """C/R answers failures with requeues + checkpoints, DMR with
        forced shrinks and neither of the others."""
        mtbf = min(RESILIENCE_QUICK_MTBFS)
        cr = quick_result.row(mtbf, "cr")
        dmr = quick_result.row(mtbf, "dmr")
        assert cr.requeues > 0
        assert cr.checkpoint_writes > 0
        assert cr.forced_shrinks == 0
        assert dmr.forced_shrinks > 0
        assert dmr.checkpoint_writes == 0

    def test_every_run_was_invariant_checked(self, quick_result):
        assert quick_result.invariant_checks > 0

    def test_renderings(self, quick_result):
        table = quick_result.as_table()
        assert "Resilience" in table and "DMR" in table
        csv = quick_result.as_csv()
        header = csv.splitlines()[0]
        assert "work_fraction" in header and "forced_shrinks" in header
        # One CSV row per (baseline + MTBF) x mechanism.
        expected = 2 * (1 + len(RESILIENCE_QUICK_MTBFS))
        assert len(csv.strip().splitlines()) == 1 + expected

    def test_row_lookup_raises_for_unknown_cell(self, quick_result):
        with pytest.raises(KeyError):
            quick_result.row(123.0, "cr")


def test_resilience_artifact_registered():
    from repro.api import builtin_registry

    registry = builtin_registry()
    assert "resilience" in registry
    assert registry.get("resilience").supports_csv
