"""Unit tests for the experiment drivers (small configurations).

The full-size reproductions live in benchmarks/; these tests exercise the
driver plumbing — result containers, gain computations, CSV/table
rendering — on reduced workloads so they stay fast.
"""

import pytest

from repro.cluster import ClusterConfig
from repro.experiments.common import run_paired, run_workload
from repro.experiments.fig01_cr_vs_dmr import run_fig01
from repro.experiments.fig03_sync import run_fig03
from repro.experiments.fig04_05_evolution import run_evolution
from repro.experiments.fig08_heterogeneous import run_fig08
from repro.experiments.fig09_inhibitor import run_fig09
from repro.errors import ReproError
from repro.workload import FSWorkloadConfig, fs_workload


SMALL_FS = FSWorkloadConfig(steps=4)


class TestCommon:
    def test_run_workload_rejects_unfinished(self):
        spec = fs_workload(5, seed=1, config=SMALL_FS)
        with pytest.raises(ReproError, match="did not finish"):
            run_workload(spec, ClusterConfig(num_nodes=20), flexible=False,
                         max_sim_time=1.0)

    def test_paired_comparison_gains(self):
        pair = run_paired(fs_workload(6, seed=1, config=SMALL_FS),
                          ClusterConfig(num_nodes=20))
        assert pair.makespan_gain == pytest.approx(
            100.0 * (pair.fixed.makespan - pair.flexible.makespan)
            / pair.fixed.makespan
        )

    def test_result_series_accessors(self):
        result = run_workload(fs_workload(4, seed=1, config=SMALL_FS),
                              ClusterConfig(num_nodes=20), flexible=True)
        assert result.allocation_series().values[-1] == 0
        assert result.completed_series().values[-1] == 4
        assert result.running_series().at(result.trace.last_time() + 1) == 0


class TestFig01Driver:
    def test_rows_and_csv(self):
        result = run_fig01(targets=(24, 48))
        assert [r.target_procs for r in result.rows] == [24, 48]
        csv = result.as_csv()
        assert csv.splitlines()[0].startswith("initial_procs,")
        assert len(csv.strip().splitlines()) == 3
        assert "C/R" in result.as_table()

    def test_custom_state_bytes(self):
        small = run_fig01(state_bytes=1e6)
        big = run_fig01(state_bytes=64e9)
        # More state -> bigger C/R disk cost.
        assert big.rows[0].cr.total > small.rows[0].cr.total


class TestSweepDrivers:
    def test_fig03_small(self):
        result = run_fig03(job_counts=(4, 8), seed=1, fs_config=SMALL_FS)
        assert [r.num_jobs for r in result.rows] == [4, 8]
        csv = result.as_csv()
        assert csv.splitlines()[0] == "jobs,fixed_s,flexible_s,gain_pct"
        assert len(csv.strip().splitlines()) == 3

    def test_evolution_driver(self):
        result = run_evolution(5, seed=1, fs_config=SMALL_FS)
        text = result.as_text()
        assert "fixed" in text and "flexible" in text
        assert result.fixed_avg_allocation > 0

    def test_fig08_small(self):
        result = run_fig08(num_jobs=8, rates=(0.0, 1.0), seeds=(1,),
                           fs_config=SMALL_FS)
        assert result.baseline == result.rows[0].makespan
        with pytest.raises(KeyError):
            result.gain_at(0.5)
        assert "flexible_rate_pct" in result.as_csv()

    def test_fig09_small(self):
        result = run_fig09(job_counts=(4,), periods=(None, 5.0), seed=1)
        cell = result.cell(4, 5.0)
        assert cell.label == "Sched 5"
        assert result.cell(4, None).label == "Flexible"
        with pytest.raises(KeyError):
            result.cell(4, 99.0)
        assert "period_s" in result.as_csv()
        assert "Sched 5" in result.as_table()


class TestSessionPlumbing:
    def test_drivers_accept_a_base_session(self):
        """Observers attached to the base session see every driver run."""
        from repro.api import CallbackObserver, Session

        completed = []
        base = Session().observe(
            CallbackObserver(on_complete=lambda t, job: completed.append(job.name))
        )
        run_fig03(job_counts=(4,), seed=1, fs_config=SMALL_FS, session=base)
        assert len(completed) == 8  # 4 jobs x fixed + flexible


class TestRealAppsDriver:
    def test_small_run_csv_and_tables(self):
        from repro.experiments.fig10_12_realapps import run_realapps

        result = run_realapps(job_counts=(10,), seed=1)
        row = result.row(10)
        assert row.pair.flexible.summary.num_jobs == 10
        with pytest.raises(KeyError):
            result.row(999)
        csv = result.as_csv()
        assert len(csv.strip().splitlines()) == 3  # header + fixed + flexible
        assert "Table II" in result.table2()
        assert "Fig. 12" in result.fig12_text(num_jobs=10)
