"""Tests for the content-addressed on-disk result store."""

import json
import os

import pytest

from repro.errors import StoreError
from repro.store import ResultStore, code_version_salt, default_store, spec_key


SPEC = {"kind": "artifact", "artifact": "fig3", "seed": 2017}


class TestAddressing:
    def test_key_is_stable_across_dict_order(self):
        a = {"x": 1, "y": 2}
        b = {"y": 2, "x": 1}
        assert spec_key(a, salt="s") == spec_key(b, salt="s")

    def test_key_changes_with_spec(self):
        assert spec_key({"seed": 1}, salt="s") != spec_key({"seed": 2}, salt="s")

    def test_key_changes_with_salt(self):
        assert spec_key(SPEC, salt="v1") != spec_key(SPEC, salt="v2")

    def test_default_salt_carries_code_version(self):
        from repro import __version__

        assert __version__ in code_version_salt()

    def test_env_salt_extends_the_version(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_SALT", "experiment-7")
        assert "experiment-7" in code_version_salt()

    def test_unserializable_spec_raises(self):
        with pytest.raises(StoreError, match="not JSON-serializable"):
            spec_key({"bad": object()}, salt="s")


class TestRoundTrip:
    def test_put_get(self, tmp_path):
        store = ResultStore(tmp_path)
        payload = {"metrics": {"makespan_s": 12.5}, "wall_time": 0.1}
        key = store.put(SPEC, payload)
        assert store.get(SPEC) == payload
        assert (tmp_path / f"{key}.json").exists()
        assert store.stats() == {"hits": 1, "misses": 0, "puts": 1}

    def test_missing_record_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get(SPEC) is None
        assert store.stats()["misses"] == 1

    def test_different_salts_do_not_share_records(self, tmp_path):
        old = ResultStore(tmp_path, salt="v1")
        new = ResultStore(tmp_path, salt="v2")
        old.put(SPEC, "payload")
        assert new.get(SPEC) is None

    def test_corrupt_record_is_a_miss_not_an_error(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(SPEC, "payload")
        store.path_for(SPEC).write_text("{ torn json", encoding="utf-8")
        assert store.get(SPEC) is None

    def test_unserializable_payload_raises_and_writes_nothing(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(StoreError, match="not JSON-serializable"):
            store.put(SPEC, object())
        assert not store.contains(SPEC)

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        store = ResultStore(tmp_path)
        for seed in range(5):
            store.put({"seed": seed}, {"value": seed})
        leftovers = [p for p in os.listdir(tmp_path) if not p.endswith(".json")]
        assert leftovers == []

    def test_put_is_idempotent(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.put(SPEC, "a") == store.put(SPEC, "b")
        assert store.get(SPEC) == "b"  # last write wins


class TestMaintenance:
    def test_entries_lists_spec_and_size(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(SPEC, {"metrics": {}})
        (entry,) = store.entries()
        assert entry.spec == SPEC
        assert entry.size_bytes > 0
        assert entry.key == store.key_for(SPEC)
        assert "artifact=fig3" in entry.describe()

    def test_entries_skips_unreadable_records(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(SPEC, "ok")
        (tmp_path / "junk.json").write_text("not json")
        assert len(store.entries()) == 1

    def test_clear(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(SPEC, "x")
        store.put({"seed": 9}, "y")
        assert store.clear() == 2
        assert store.entries() == []
        assert store.clear() == 0  # idempotent, even with no directory

    def test_empty_store_lists_nothing(self, tmp_path):
        assert ResultStore(tmp_path / "never-created").entries() == []

    def test_listing_is_json_able_and_carries_stats(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(SPEC, {"metrics": {}})
        store.get(SPEC)          # hit
        store.get({"seed": 1})   # miss
        listing = store.listing()
        json.dumps(listing)  # must round-trip
        assert listing["root"] == str(tmp_path)
        assert listing["salt"] == store.salt
        assert listing["stats"] == {"hits": 1, "misses": 1, "puts": 1}
        (record,) = listing["records"]
        assert record["spec"] == SPEC
        assert record["key"] == store.key_for(SPEC)
        assert record["size_bytes"] > 0

    def test_listing_ordering_is_stable(self, tmp_path):
        store = ResultStore(tmp_path)
        for seed in range(5):
            store.put({"seed": seed}, "x")
        # Equalize mtimes-independent ordering: creation timestamps are
        # read from the records themselves; force exact ties so the key
        # tiebreak is what orders them.
        for path in tmp_path.glob("*.json"):
            record = json.loads(path.read_text())
            record["created"] = 1000.0
            path.write_text(json.dumps(record))
        first = [r["key"] for r in store.listing()["records"]]
        second = [r["key"] for r in store.listing()["records"]]
        assert first == second == sorted(first)


class TestDefaultStore:
    def test_honours_environment(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-store"))
        assert default_store().root == tmp_path / "env-store"

    def test_explicit_root_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-store"))
        assert default_store(str(tmp_path / "mine")).root == tmp_path / "mine"

    def test_no_directory_created_until_first_put(self, tmp_path):
        store = ResultStore(tmp_path / "lazy")
        store.get(SPEC)
        assert not (tmp_path / "lazy").exists()
        store.put(SPEC, "x")
        assert (tmp_path / "lazy").is_dir()
