"""Shared test fixtures.

Every test gets a private result-store directory: the CLI (and anything
calling :func:`repro.store.default_store`) honours ``REPRO_CACHE_DIR``,
and without this isolation a CLI test would populate ``.repro-cache``
in the repo checkout and leak cached renders between tests.
"""

import pytest


@pytest.fixture(autouse=True)
def _isolated_result_store(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "result-store"))
