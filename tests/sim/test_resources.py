"""Tests for Store and Resource coordination primitives."""

import pytest

from repro.errors import SimulationError
from repro.sim import Environment, Resource, Store


def test_store_put_then_get():
    env = Environment()
    store = Store(env)
    store.put("msg")

    def proc():
        item = yield store.get()
        return item

    p = env.process(proc())
    env.run()
    assert p.value == "msg"


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    arrival = {}

    def consumer():
        item = yield store.get()
        arrival["t"] = env.now
        arrival["item"] = item

    def producer():
        yield env.timeout(4)
        store.put("late")

    env.process(consumer())
    env.process(producer())
    env.run()
    assert arrival == {"t": 4, "item": "late"}


def test_store_fifo_order():
    env = Environment()
    store = Store(env)
    got = []

    def consumer():
        for _ in range(3):
            got.append((yield store.get()))

    env.process(consumer())
    for x in (1, 2, 3):
        store.put(x)
    env.run()
    assert got == [1, 2, 3]


def test_store_try_get_nonblocking():
    env = Environment()
    store = Store(env)
    assert store.try_get() is None
    store.put("a")
    assert store.try_get() == "a"
    assert len(store) == 0


def test_store_items_snapshot():
    env = Environment()
    store = Store(env)
    store.put(1)
    store.put(2)
    assert store.items == (1, 2)


def test_resource_capacity_validation():
    with pytest.raises(SimulationError):
        Resource(Environment(), capacity=0)


def test_resource_grants_up_to_capacity():
    env = Environment()
    res = Resource(env, capacity=2)
    order = []

    def worker(tag, hold):
        req = res.request()
        yield req
        order.append((tag, env.now))
        yield env.timeout(hold)
        res.release()

    env.process(worker("a", 5))
    env.process(worker("b", 5))
    env.process(worker("c", 5))
    env.run()
    # a,b start immediately; c waits for a release at t=5.
    assert order == [("a", 0), ("b", 0), ("c", 5)]
    assert res.in_use == 0


def test_resource_release_without_request_raises():
    env = Environment()
    res = Resource(env)
    with pytest.raises(SimulationError):
        res.release()


def test_resource_queued_count():
    env = Environment()
    res = Resource(env, capacity=1)

    def holder():
        yield res.request()
        yield env.timeout(10)
        res.release()

    def waiter():
        yield res.request()
        res.release()

    env.process(holder())
    env.process(waiter())
    env.run(until=5)
    assert res.queued == 1
    env.run()
    assert res.queued == 0
