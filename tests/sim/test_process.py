"""Unit tests for generator processes: waiting, returning, interrupts."""

import pytest

from repro.errors import SimulationError
from repro.sim import Environment, Interrupt


def test_process_waits_on_timeouts():
    env = Environment()
    trace = []

    def proc():
        trace.append(env.now)
        yield env.timeout(1.5)
        trace.append(env.now)
        yield env.timeout(2.5)
        trace.append(env.now)

    env.process(proc())
    env.run()
    assert trace == [0.0, 1.5, 4.0]


def test_process_return_value():
    env = Environment()

    def proc():
        yield env.timeout(1)
        return 42

    p = env.process(proc())
    env.run()
    assert p.value == 42


def test_timeout_value_passed_into_generator():
    env = Environment()
    got = []

    def proc():
        got.append((yield env.timeout(1, value="hello")))

    env.process(proc())
    env.run()
    assert got == ["hello"]


def test_process_waits_on_another_process():
    env = Environment()

    def child():
        yield env.timeout(3)
        return "child-result"

    def parent():
        result = yield env.process(child())
        return result

    p = env.process(parent())
    env.run()
    assert p.value == "child-result"
    assert env.now == 3


def test_exception_in_process_propagates_to_run():
    env = Environment()

    def proc():
        yield env.timeout(1)
        raise RuntimeError("kaput")

    env.process(proc())
    with pytest.raises(RuntimeError, match="kaput"):
        env.run()


def test_exception_propagates_to_waiting_parent():
    env = Environment()

    def child():
        yield env.timeout(1)
        raise RuntimeError("inner")

    def parent():
        try:
            yield env.process(child())
        except RuntimeError as exc:
            return f"caught {exc}"

    p = env.process(parent())
    env.run()
    assert p.value == "caught inner"


def test_yield_non_event_crashes_process():
    env = Environment()

    def proc():
        yield "not an event"

    env.process(proc())
    with pytest.raises(SimulationError, match="non-event"):
        env.run()


def test_interrupt_delivers_cause():
    env = Environment()
    log = []

    def victim():
        try:
            yield env.timeout(100)
        except Interrupt as exc:
            log.append((env.now, exc.cause))

    def attacker(target):
        yield env.timeout(5)
        target.interrupt(cause="shrink-now")

    v = env.process(victim())
    env.process(attacker(v))
    env.run()
    assert log == [(5, "shrink-now")]


def test_interrupt_unsubscribes_from_old_target():
    env = Environment()
    resumed = []

    def victim():
        try:
            yield env.timeout(10)
        except Interrupt:
            pass
        yield env.timeout(1)
        resumed.append(env.now)

    def attacker(target):
        yield env.timeout(2)
        target.interrupt()

    v = env.process(victim())
    env.process(attacker(v))
    env.run()
    # After the interrupt at t=2 the victim waits 1 more unit; the stale
    # t=10 timeout must NOT resume it a second time.
    assert resumed == [3]


def test_interrupting_dead_process_raises():
    env = Environment()

    def quick():
        yield env.timeout(1)

    p = env.process(quick())
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_process_cannot_interrupt_itself():
    env = Environment()

    def proc():
        with pytest.raises(SimulationError):
            env.active_process.interrupt()
        yield env.timeout(0)

    env.process(proc())
    env.run()


def test_is_alive_flag():
    env = Environment()

    def proc():
        yield env.timeout(5)

    p = env.process(proc())
    assert p.is_alive
    env.run()
    assert not p.is_alive


def test_non_generator_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.process(lambda: None)  # type: ignore[arg-type]


def test_yield_already_processed_event_continues_immediately():
    env = Environment()
    trace = []

    def proc(ev):
        yield env.timeout(5)
        val = yield ev  # ev fired at t=1, already processed
        trace.append((env.now, val))

    ev = env.timeout(1, value="early")
    env.process(proc(ev))
    env.run()
    assert trace == [(5, "early")]
