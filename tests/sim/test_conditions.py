"""Tests for AllOf / AnyOf condition events."""

import pytest

from repro.errors import SimulationError
from repro.sim import Environment


def test_all_of_waits_for_every_event():
    env = Environment()

    def proc():
        t1, t2 = env.timeout(1, "a"), env.timeout(3, "b")
        result = yield env.all_of([t1, t2])
        return (env.now, result[t1], result[t2])

    p = env.process(proc())
    env.run()
    assert p.value == (3, "a", "b")


def test_any_of_fires_on_first():
    env = Environment()

    def proc():
        t1, t2 = env.timeout(5, "slow"), env.timeout(1, "fast")
        result = yield env.any_of([t1, t2])
        return (env.now, t2 in result, t1 in result)

    p = env.process(proc())
    env.run()
    assert p.value == (1, True, False)


def test_empty_all_of_fires_immediately():
    env = Environment()

    def proc():
        yield env.all_of([])
        return env.now

    p = env.process(proc())
    env.run()
    assert p.value == 0


def test_empty_any_of_fires_immediately():
    env = Environment()

    def proc():
        yield env.any_of([])
        return env.now

    p = env.process(proc())
    env.run()
    assert p.value == 0


def test_condition_value_mapping_interface():
    env = Environment()
    holder = {}

    def proc():
        t1 = env.timeout(1, "x")
        result = yield env.all_of([t1])
        holder["res"] = result
        holder["t1"] = t1

    env.process(proc())
    env.run()
    res, t1 = holder["res"], holder["t1"]
    assert res[t1] == "x"
    assert len(res) == 1
    assert list(res) == [t1]
    assert res == {t1: "x"}
    with pytest.raises(KeyError):
        _ = res[env.event()]


def test_condition_failure_propagates():
    env = Environment()

    def failer():
        yield env.timeout(1)
        raise ValueError("nope")

    def proc():
        with pytest.raises(ValueError, match="nope"):
            yield env.all_of([env.process(failer()), env.timeout(10)])
        return "handled"

    p = env.process(proc())
    env.run()
    assert p.value == "handled"


def test_cross_environment_events_rejected():
    env1, env2 = Environment(), Environment()
    with pytest.raises(SimulationError):
        env1.all_of([env2.timeout(1)])


def test_any_of_with_already_processed_event():
    env = Environment()
    done = {}

    def proc(ev):
        yield env.timeout(5)
        result = yield env.any_of([ev, env.timeout(100)])
        done["now"] = env.now
        done["has"] = ev in result

    ev = env.timeout(1, value="pre")
    env.process(proc(ev))
    env.run(until=20)
    assert done == {"now": 5, "has": True}
