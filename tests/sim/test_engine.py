"""Unit tests for the DES engine: clock, ordering, run() semantics."""

import pytest

from repro.errors import SimulationError
from repro.sim import EmptySchedule, Environment


def test_initial_time_defaults_to_zero():
    assert Environment().now == 0.0


def test_initial_time_can_be_set():
    assert Environment(100.0).now == 100.0


def test_timeout_advances_clock():
    env = Environment()
    env.timeout(5.0)
    env.step()
    assert env.now == 5.0


def test_run_until_time():
    env = Environment()
    env.timeout(3.0)
    env.timeout(10.0)
    env.run(until=7.0)
    assert env.now == 7.0


def test_run_until_past_raises():
    env = Environment(50.0)
    with pytest.raises(SimulationError):
        env.run(until=10.0)


def test_run_drains_schedule():
    env = Environment()
    env.timeout(1.0)
    env.timeout(2.0)
    env.run()
    assert env.now == 2.0


def test_step_on_empty_schedule_raises():
    with pytest.raises(EmptySchedule):
        Environment().step()


def test_peek_reports_next_event_time():
    env = Environment()
    assert env.peek() == float("inf")
    env.timeout(4.2)
    assert env.peek() == 4.2


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1.0)


def test_same_time_events_fifo_order():
    env = Environment()
    fired = []
    for tag in range(5):
        ev = env.timeout(1.0, value=tag)
        ev.callbacks.append(lambda e: fired.append(e.value))
    env.run()
    assert fired == [0, 1, 2, 3, 4]


def test_run_until_event_returns_value():
    env = Environment()

    def proc():
        yield env.timeout(2.0)
        return "done"

    p = env.process(proc())
    assert env.run(until=p) == "done"
    assert env.now == 2.0


def test_run_until_already_processed_event():
    env = Environment()
    ev = env.timeout(1.0, value="v")
    env.run()
    assert env.run(until=ev) == "v"


def test_run_out_of_events_before_until_raises():
    env = Environment()
    ev = env.event()  # never triggered
    with pytest.raises(SimulationError):
        env.run(until=ev)


def test_event_succeed_once_only():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_fail_requires_exception():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")


def test_unhandled_failure_crashes_run():
    env = Environment()
    ev = env.event()
    ev.fail(ValueError("boom"))
    with pytest.raises(ValueError, match="boom"):
        env.run()


def test_defused_failure_does_not_crash():
    env = Environment()
    ev = env.event()
    ev.fail(ValueError("boom"))
    ev.defuse()
    env.run()  # no exception


def test_value_before_trigger_raises():
    env = Environment()
    ev = env.event()
    with pytest.raises(SimulationError):
        _ = ev.value
    with pytest.raises(SimulationError):
        _ = ev.ok
