"""Tests for named reproducible RNG streams."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import RandomStreams


def test_same_seed_same_draws():
    a, b = RandomStreams(7), RandomStreams(7)
    assert [a.uniform("x") for _ in range(5)] == [b.uniform("x") for _ in range(5)]


def test_different_seeds_differ():
    a, b = RandomStreams(1), RandomStreams(2)
    assert a.uniform("x") != b.uniform("x")


def test_streams_are_independent_of_creation_order():
    a, b = RandomStreams(42), RandomStreams(42)
    # Interleave stream creation differently; named streams must not care.
    a_x = [a.uniform("x") for _ in range(3)]
    a_y = [a.uniform("y") for _ in range(3)]
    b_y = [b.uniform("y") for _ in range(3)]
    b_x = [b.uniform("x") for _ in range(3)]
    assert a_x == b_x
    assert a_y == b_y


def test_exponential_mean_validation():
    with pytest.raises(ValueError):
        RandomStreams(0).exponential("e", 0.0)


def test_exponential_rough_mean():
    rs = RandomStreams(3)
    samples = [rs.exponential("e", 10.0) for _ in range(4000)]
    assert 9.0 < np.mean(samples) < 11.0


def test_hyperexponential_validation():
    rs = RandomStreams(0)
    with pytest.raises(ValueError):
        rs.hyperexponential("h", [1.0, 2.0], [0.5])
    with pytest.raises(ValueError):
        rs.hyperexponential("h", [1.0, 2.0], [0.7, 0.7])


def test_hyperexponential_mean_mixture():
    rs = RandomStreams(11)
    samples = [rs.hyperexponential("h", [1.0, 100.0], [0.9, 0.1]) for _ in range(8000)]
    expected = 0.9 * 1.0 + 0.1 * 100.0
    assert 0.8 * expected < np.mean(samples) < 1.2 * expected


def test_integers_inclusive_bounds():
    rs = RandomStreams(5)
    draws = {rs.integers("i", 1, 3) for _ in range(200)}
    assert draws == {1, 2, 3}


def test_bernoulli_validation():
    with pytest.raises(ValueError):
        RandomStreams(0).bernoulli("b", 1.5)


def test_bernoulli_extremes():
    rs = RandomStreams(0)
    assert not any(rs.bernoulli("b0", 0.0) for _ in range(50))
    assert all(rs.bernoulli("b1", 1.0) for _ in range(50))


def test_choice_uniform_covers_options():
    rs = RandomStreams(9)
    opts = ["a", "b", "c"]
    seen = {rs.choice("c", opts) for _ in range(200)}
    assert seen == set(opts)


def test_spawn_derives_independent_registry():
    rs = RandomStreams(100)
    child1, child2 = rs.spawn("cell-1"), rs.spawn("cell-2")
    again = RandomStreams(100).spawn("cell-1")
    assert child1.uniform("x") == again.uniform("x")
    assert child1.base_seed != child2.base_seed


@given(st.integers(min_value=0, max_value=2**31), st.text(min_size=1, max_size=20))
@settings(max_examples=50, deadline=None)
def test_property_stream_determinism(seed, name):
    a = RandomStreams(seed).uniform(name)
    b = RandomStreams(seed).uniform(name)
    assert a == b
    assert 0.0 <= a < 1.0
