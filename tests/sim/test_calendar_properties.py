"""Differential Hypothesis tests: EventCalendar vs the old global heap.

The calendar replaced the engine's ``(time, priority, serial, event)``
heap; its one obligation is producing *exactly* the same event order.
These tests drive both structures with the same random operation
sequences — heavy on timestamp ties, urgent-after-normal insertions and
push-during-drain interleavings — and require identical behaviour at
every step.
"""

from __future__ import annotations

import heapq
from itertools import count

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.calendar import EventCalendar

#: Few distinct times and priorities → dense tie coverage (the whole
#: point: discrete-event workloads collapse onto shared timestamps).
TIMES = st.sampled_from([0.0, 1.0, 1.5, 2.0, 2.5, 10.0])
PRIORITIES = st.sampled_from([0, 1, 10])

#: An operation: push(time, priority) | pop | peek.
OPS = st.one_of(
    st.tuples(st.just("push"), TIMES, PRIORITIES),
    st.just(("pop",)),
    st.just(("peek",)),
)


class HeapModel:
    """The engine's original pending-event structure, verbatim semantics."""

    def __init__(self) -> None:
        self._heap = []
        self._serial = count()

    def push(self, time, priority, event):
        heapq.heappush(self._heap, (time, priority, next(self._serial), event))

    def pop(self):
        time, priority, _serial, event = heapq.heappop(self._heap)
        return time, priority, event

    def peek_time(self):
        return self._heap[0][0] if self._heap else float("inf")

    def __len__(self):
        return len(self._heap)


@settings(max_examples=200)
@given(ops=st.lists(OPS, max_size=80))
def test_calendar_matches_reference_heap(ops):
    calendar, model = EventCalendar(), HeapModel()
    events = count()
    for op in ops:
        if op[0] == "push":
            _, time, priority = op
            event = next(events)
            calendar.push(time, priority, event)
            model.push(time, priority, event)
        elif op[0] == "pop":
            if len(model):
                assert calendar.pop() == model.pop()
            else:
                with pytest.raises(IndexError):
                    calendar.pop()
        else:
            assert calendar.peek_time() == model.peek_time()
        assert len(calendar) == len(model)
        assert bool(calendar) == bool(model)
    # Drain whatever is left: the full residual order must match too.
    while len(model):
        assert calendar.pop() == model.pop()
    assert not calendar


@settings(max_examples=100)
@given(
    pushes=st.lists(st.tuples(TIMES, PRIORITIES), min_size=1, max_size=40),
    extra_priority=PRIORITIES,
)
def test_push_during_drain_matches_heap(pushes, extra_priority):
    """Events scheduled *at the current time while draining it* (what a
    scheduling pass does constantly) keep the exact heap order."""
    calendar, model = EventCalendar(), HeapModel()
    events = count()
    for time, priority in pushes:
        event = next(events)
        calendar.push(time, priority, event)
        model.push(time, priority, event)
    drained = 0
    while len(model):
        got = calendar.pop()
        assert got == model.pop()
        if drained % 3 == 0:
            # Re-enter the just-popped timestamp, as callbacks do.
            event = next(events)
            calendar.push(got[0], extra_priority, event)
            model.push(got[0], extra_priority, event)
        drained += 1
    assert not calendar


def test_same_timestamp_fifo_ties():
    """Explicit pin of rule 3: FIFO within (time, priority)."""
    calendar = EventCalendar()
    for event in ("a", "b", "c"):
        calendar.push(5.0, 1, event)
    calendar.push(5.0, 0, "urgent-late")  # rule 2: jumps the queue
    assert [calendar.pop()[2] for _ in range(4)] == [
        "urgent-late", "a", "b", "c",
    ]


def test_peek_time_never_stale():
    """Rule: the timestamp heap holds exactly the non-empty buckets."""
    calendar = EventCalendar()
    calendar.push(3.0, 1, "x")
    calendar.push(1.0, 1, "y")
    assert calendar.peek_time() == 1.0
    calendar.pop()
    assert calendar.peek_time() == 3.0
    calendar.pop()
    assert calendar.peek_time() == float("inf")
