"""Errors must round-trip through pickle: pool workers raise them in a
child process and ``concurrent.futures`` re-raises them in the parent."""

import pickle

import pytest

import repro.errors as errors
from repro.errors import InvariantViolation, ReproError, SimulationTimeout


def test_simulation_timeout_round_trips_with_payload():
    exc = SimulationTimeout(
        workload_name="fs-25jobs-seed7",
        max_sim_time=1000.0,
        unsubmitted=3,
        pending_job_ids=(4, 5),
        running_job_ids=(1,),
    )
    clone = pickle.loads(pickle.dumps(exc))
    assert isinstance(clone, SimulationTimeout)
    assert clone.workload_name == "fs-25jobs-seed7"
    assert clone.max_sim_time == 1000.0
    assert clone.unsubmitted == 3
    assert clone.pending_job_ids == (4, 5)
    assert clone.running_job_ids == (1,)
    assert str(clone) == str(exc)


def test_simulation_timeout_message_survives_reduce():
    exc = SimulationTimeout("w", 1.0, 0, (), (9,))
    clone = pickle.loads(pickle.dumps(exc))
    assert "did not finish" in str(clone)
    assert clone.running_job_ids == (9,)


def test_invariant_violation_round_trips_with_payload():
    exc = InvariantViolation("no-double-allocation", 42.5, "node 3 granted twice")
    clone = pickle.loads(pickle.dumps(exc))
    assert isinstance(clone, InvariantViolation)
    assert clone.invariant == "no-double-allocation"
    assert clone.time == 42.5
    assert clone.detail == "node 3 granted twice"
    assert str(clone) == str(exc)


@pytest.mark.parametrize(
    "exc_type",
    [t for t in vars(errors).values()
     if isinstance(t, type) and issubclass(t, ReproError)
     and t not in (SimulationTimeout, InvariantViolation)],
)
def test_every_simple_repro_error_round_trips(exc_type):
    exc = exc_type("some message")
    clone = pickle.loads(pickle.dumps(exc))
    assert isinstance(clone, exc_type)
    assert str(clone) == "some message"
