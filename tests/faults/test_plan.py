"""Fault-plan construction: validation, determinism, MTBF sampling."""

import pickle

import pytest

from repro.errors import FaultError
from repro.faults import FaultEvent, FaultKind, FaultPlan


class TestFaultEvent:
    def test_node_kinds_need_a_node(self):
        with pytest.raises(FaultError):
            FaultEvent(time=1.0, kind=FaultKind.NODE_FAIL)

    def test_network_degrade_needs_no_node(self):
        e = FaultEvent(
            time=1.0, kind=FaultKind.NETWORK_DEGRADE, factor=2.0, duration=5.0
        )
        assert e.node is None

    def test_window_kinds_validate_factor_and_duration(self):
        with pytest.raises(FaultError):
            FaultEvent(time=0.0, kind=FaultKind.SLOWDOWN, node=1, factor=0.5,
                       duration=5.0)
        with pytest.raises(FaultError):
            FaultEvent(time=0.0, kind=FaultKind.SLOWDOWN, node=1, factor=2.0,
                       duration=0.0)

    def test_negative_time_rejected(self):
        with pytest.raises(FaultError):
            FaultEvent(time=-1.0, kind=FaultKind.NODE_FAIL, node=0)


class TestFaultPlan:
    def test_events_are_time_sorted(self):
        plan = FaultPlan.scripted(
            [
                FaultEvent(time=9.0, kind=FaultKind.NODE_FAIL, node=1),
                FaultEvent(time=3.0, kind=FaultKind.NODE_FAIL, node=2),
            ]
        )
        assert [e.time for e in plan] == [3.0, 9.0]

    def test_clipped_drops_late_events(self):
        plan = FaultPlan.scripted(
            [
                FaultEvent(time=3.0, kind=FaultKind.NODE_FAIL, node=0),
                FaultEvent(time=30.0, kind=FaultKind.NODE_FAIL, node=1),
            ]
        )
        assert len(plan.clipped(10.0)) == 1

    def test_plan_pickles(self):
        plan = FaultPlan.from_mtbf(
            mtbf=100.0, horizon=1000.0, num_nodes=8, seed=3, repair_time=50.0
        )
        clone = pickle.loads(pickle.dumps(plan))
        assert clone == plan


class TestMTBFSampling:
    def test_deterministic_for_a_seed(self):
        a = FaultPlan.from_mtbf(mtbf=200.0, horizon=2000.0, num_nodes=16, seed=5)
        b = FaultPlan.from_mtbf(mtbf=200.0, horizon=2000.0, num_nodes=16, seed=5)
        c = FaultPlan.from_mtbf(mtbf=200.0, horizon=2000.0, num_nodes=16, seed=6)
        assert a.events == b.events
        assert a.events != c.events

    def test_failures_within_horizon_and_node_range(self):
        plan = FaultPlan.from_mtbf(
            mtbf=50.0, horizon=1000.0, num_nodes=4, seed=1
        )
        assert plan.failure_count > 0
        for e in plan:
            assert e.time < 1000.0
            assert 0 <= e.node < 4

    def test_repairs_follow_failures(self):
        plan = FaultPlan.from_mtbf(
            mtbf=100.0, horizon=500.0, num_nodes=8, seed=2, repair_time=60.0
        )
        fails = [e for e in plan if e.kind is FaultKind.NODE_FAIL]
        recovers = [e for e in plan if e.kind is FaultKind.NODE_RECOVER]
        assert len(fails) == len(recovers)
        for r in recovers:
            partners = [
                f for f in fails
                if abs(f.time + 60.0 - r.time) < 1e-6 and f.node == r.node
            ]
            assert partners, f"no failure 60 s before repair at t={r.time}"

    def test_mean_gap_tracks_mtbf(self):
        plan = FaultPlan.from_mtbf(
            mtbf=20.0, horizon=20000.0, num_nodes=8, seed=11
        )
        times = [e.time for e in plan if e.kind is FaultKind.NODE_FAIL]
        gaps = [b - a for a, b in zip(times, times[1:])]
        mean = sum(gaps) / len(gaps)
        assert 14.0 < mean < 28.0  # exponential with mean 20

    def test_invalid_parameters_rejected(self):
        with pytest.raises(FaultError):
            FaultPlan.from_mtbf(mtbf=0.0, horizon=10.0, num_nodes=1)
        with pytest.raises(FaultError):
            FaultPlan.from_mtbf(mtbf=1.0, horizon=0.0, num_nodes=1)
        with pytest.raises(FaultError):
            FaultPlan.from_mtbf(mtbf=1.0, horizon=10.0, num_nodes=0)
        with pytest.raises(FaultError):
            FaultPlan.from_mtbf(mtbf=1.0, horizon=10.0, num_nodes=2,
                                repair_time=0.0)

    def test_nan_parameters_rejected(self):
        """Regression: NaN passes `<= 0` checks and would make the
        sampling loop spin forever."""
        nan = float("nan")
        with pytest.raises(FaultError):
            FaultPlan.from_mtbf(mtbf=nan, horizon=10.0, num_nodes=2)
        with pytest.raises(FaultError):
            FaultPlan.from_mtbf(mtbf=1.0, horizon=nan, num_nodes=2)
        with pytest.raises(FaultError):
            FaultPlan.from_mtbf(mtbf=1.0, horizon=10.0, num_nodes=2,
                                repair_time=nan)
        with pytest.raises(FaultError):
            FaultEvent(time=nan, kind=FaultKind.NODE_FAIL, node=0)

    def test_max_failures_caps_the_plan(self):
        plan = FaultPlan.from_mtbf(
            mtbf=10.0, horizon=100000.0, num_nodes=4, seed=0, max_failures=5
        )
        assert plan.failure_count == 5
