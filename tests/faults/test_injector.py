"""Fault injection through a live simulation: node health transitions,
requeue-on-failure, forced shrinks, degradation windows."""

import pytest

from repro.apps import flexible_sleep
from repro.cluster import ClusterConfig
from repro.cluster.node import NodeHealth, NodeState
from repro.core import ResizeAction, ResizeRequest
from repro.core.actions import DecisionReason
from repro.faults import FaultEvent, FaultInjector, FaultKind, FaultPlan
from repro.metrics import EventKind
from repro.runtime import RuntimeConfig, install_runtime_launcher
from repro.sim import Environment
from repro.slurm import Job, JobClass, JobState, SlurmConfig, SlurmController


def setup(nodes=8, runtime=None, **slurm_kw):
    env = Environment()
    cluster = ClusterConfig(num_nodes=nodes)
    machine = cluster.build_machine()
    ctl = SlurmController(env, machine, config=SlurmConfig(**slurm_kw))
    install_runtime_launcher(ctl, cluster, runtime)
    return env, cluster, machine, ctl


def app_of(steps=4, step_time=10.0, at=4, **kw):
    return flexible_sleep(step_time=step_time, at_procs=at, steps=steps, **kw)


def rigid_job(nodes, steps=4, limit=10_000.0, name="r"):
    return Job(name=name, num_nodes=nodes, time_limit=limit,
               payload=app_of(steps=steps, at=nodes))


def flex_job(nodes, steps=6, limit=10_000.0, name="f", min_procs=1, max_procs=8):
    app = app_of(steps=steps, at=nodes, min_procs=min_procs, max_procs=max_procs)
    return Job(
        name=name,
        num_nodes=nodes,
        time_limit=limit,
        job_class=JobClass.MALLEABLE,
        resize_request=app.resize,
        payload=app,
    )


def inject(ctl, *events):
    injector = FaultInjector(ctl, FaultPlan.scripted(events))
    injector.start()
    return injector


class TestNodeHealth:
    def test_free_node_failure_leaves_pool(self):
        env, _, machine, ctl = setup(nodes=8)
        inject(ctl, FaultEvent(time=1.0, kind=FaultKind.NODE_FAIL, node=7))
        env.run(until=2.0)
        assert machine.nodes[7].state is NodeState.DOWN
        assert machine.nodes[7].health is NodeHealth.DOWN
        assert machine.free_count == 7
        assert machine.unavailable_count == 1
        assert machine.alive_count == 7

    def test_recovery_returns_node_to_pool(self):
        env, _, machine, ctl = setup(nodes=8)
        inject(
            ctl,
            FaultEvent(time=1.0, kind=FaultKind.NODE_FAIL, node=7),
            FaultEvent(time=5.0, kind=FaultKind.NODE_RECOVER, node=7),
        )
        env.run(until=6.0)
        assert machine.nodes[7].state is NodeState.IDLE
        assert machine.free_count == 8

    def test_down_node_never_allocated(self):
        env, _, machine, ctl = setup(nodes=4)
        inject(ctl, FaultEvent(time=1.0, kind=FaultKind.NODE_FAIL, node=0))
        env.run(until=2.0)
        job = ctl.submit(rigid_job(3))
        env.run(until=3.0)
        assert job.is_running
        assert 0 not in job.nodes

    def test_drain_and_resume(self):
        env, _, machine, ctl = setup(nodes=4)
        inject(
            ctl,
            FaultEvent(time=1.0, kind=FaultKind.NODE_DRAIN, node=3),
            FaultEvent(time=5.0, kind=FaultKind.NODE_RESUME, node=3),
        )
        env.run(until=2.0)
        assert machine.nodes[3].health is NodeHealth.DRAIN
        assert machine.free_count == 3
        env.run(until=6.0)
        assert machine.free_count == 4

    def test_drained_allocated_node_parks_after_release(self):
        env, _, machine, ctl = setup(nodes=4)
        job = ctl.submit(rigid_job(4, steps=2))
        env.run(until=1.0)
        ctl.drain_node(3)
        assert machine.nodes[3].state is NodeState.DRAINING
        env.run()
        assert job.state is JobState.COMPLETED
        # The drained node did not return to the pool with the others.
        assert machine.free_count == 3
        assert machine.nodes[3].job_id is None
        ctl.resume_node(3)
        assert machine.free_count == 4


class TestRigidRequeue:
    def test_rigid_job_requeued_and_restarts_from_scratch(self):
        env, _, machine, ctl = setup(nodes=4)
        job = ctl.submit(rigid_job(4, steps=4))  # 40 s of work
        inject(ctl, FaultEvent(time=15.0, kind=FaultKind.NODE_FAIL, node=0))
        env.run(until=16.0)
        assert job.state is JobState.PENDING
        assert job.requeues == 1
        # Only 3 nodes remain: a 4-node rigid job cannot restart yet.
        assert machine.free_count == 3
        ctl.recover_node(0)
        env.run()
        assert job.state is JobState.COMPLETED
        requeue_events = ctl.trace.of_kind(EventKind.JOB_REQUEUE)
        assert len(requeue_events) == 1
        assert requeue_events[0].data["reason"] == "node_failure"
        # From-scratch restart: ~16 s wasted + full 40 s re-run.
        assert job.end_time > 40.0 + 15.0

    def test_requeued_job_restarts_from_checkpoint(self):
        env, _, machine, ctl = setup(
            nodes=4, runtime=RuntimeConfig(checkpoint_period_steps=2)
        )
        job = ctl.submit(rigid_job(4, steps=6))
        inject(
            ctl,
            FaultEvent(time=35.0, kind=FaultKind.NODE_FAIL, node=0),
            FaultEvent(time=36.0, kind=FaultKind.NODE_RECOVER, node=0),
        )
        env.run()
        assert job.state is JobState.COMPLETED
        writes = ctl.trace.of_kind(EventKind.CHECKPOINT_WRITE)
        reads = ctl.trace.of_kind(EventKind.CHECKPOINT_READ)
        assert writes and reads
        # The restart resumed past the checkpointed steps.
        assert reads[0].data["steps"] >= 2

    def test_requeue_restores_submitted_time_limit(self):
        """Regression: a job that shrank (limit rescaled and anchored to
        the dead incarnation's elapsed time) must requeue with its
        original submitted walltime limit."""
        env, _, machine, ctl = setup(nodes=4)
        job = ctl.submit(flex_job(4, steps=8, max_procs=4, limit=100.0))
        env.run(until=1.0)
        ctl.shrink_job(job, 2)  # rescales time_limit upward
        assert job.time_limit > 100.0
        ctl.requeue_job(job)
        assert job.time_limit == 100.0
        assert job.num_nodes == 4

    def test_operator_time_limit_update_survives_requeue(self):
        """An scontrol-style limit update is the job's new baseline and,
        like in real Slurm, persists across a requeue (only the runtime's
        per-incarnation resize rescaling reverts)."""
        env, _, machine, ctl = setup(nodes=4)
        job = ctl.submit(rigid_job(4, steps=8, limit=100.0))
        env.run(until=1.0)
        ctl.update_time_limit(job, 5000.0)
        ctl.requeue_job(job)
        assert job.time_limit == 5000.0

    def test_flexible_job_with_non_resizable_app_requeues(self):
        """Regression: a forced shrink must only be issued when a runtime
        will actually service it.  A MALLEABLE job whose payload app has
        no resize support never reaches a reconfiguring point (a custom
        launcher is needed to even start it — NanosRuntime refuses), so
        the controller must requeue it instead of parking a forced
        decision it would hold forever."""
        from repro.apps import AppModel, LinearScalability
        from repro.cluster import Machine
        from repro.sim import Environment
        from repro.slurm import SlurmController

        env = Environment()
        machine = Machine(4)
        ctl = SlurmController(env, machine)
        app = AppModel(name="norsz", iterations=4, serial_step_time=40.0,
                       state_bytes=0.0, scalability=LinearScalability())
        job = ctl.submit(
            Job(name="f", num_nodes=4, time_limit=10_000.0,
                job_class=JobClass.MALLEABLE,
                resize_request=ResizeRequest(min_procs=1, max_procs=4),
                payload=app)
        )
        env.run(until=1.0)
        assert job.is_running
        ctl.fail_node(0)
        assert job.requeues == 1
        assert ctl.forced == {}

    def test_failure_on_free_node_leaves_jobs_alone(self):
        env, _, machine, ctl = setup(nodes=8)
        job = ctl.submit(rigid_job(4, steps=2))
        inject(ctl, FaultEvent(time=5.0, kind=FaultKind.NODE_FAIL, node=7))
        env.run()
        assert job.state is JobState.COMPLETED
        assert job.requeues == 0


class TestForcedShrink:
    def test_flexible_job_shrinks_away_from_dead_node(self):
        env, _, machine, ctl = setup(nodes=4)
        job = ctl.submit(flex_job(4, steps=6))
        inject(ctl, FaultEvent(time=15.0, kind=FaultKind.NODE_FAIL, node=2))
        env.run(until=15.5)
        # Decision issued, not yet serviced: the job still holds node 2.
        assert ctl.forced.get(job.job_id) is not None
        decision = ctl.forced[job.job_id]
        assert decision.action is ResizeAction.SHRINK
        assert decision.reason is DecisionReason.NODE_FAILURE
        assert 2 in job.nodes
        env.run()
        assert job.state is JobState.COMPLETED
        assert job.requeues == 0
        # The shrink evacuated exactly the dead node.
        shrinks = ctl.trace.of_kind(EventKind.RESIZE_SHRINK)
        assert len(shrinks) == 1
        assert shrinks[0].data["released"] == (2,)
        assert machine.nodes[2].state is NodeState.DOWN
        assert machine.nodes[2].job_id is None

    def test_flexible_at_min_size_requeued_instead(self):
        env, _, machine, ctl = setup(nodes=4)
        # min == max == 2: the job can neither expand nor shrink, so a
        # node death leaves requeueing as the only answer.
        job = ctl.submit(flex_job(2, steps=6, min_procs=2, max_procs=2))
        inject(ctl, FaultEvent(time=15.0, kind=FaultKind.NODE_FAIL, node=0))
        env.run(until=16.0)
        # Requeued (not shrunk) — and immediately restarted on the
        # surviving nodes, since two of the three alive ones were free.
        assert job.requeues == 1
        assert ctl.forced == {}
        assert 0 not in job.nodes
        env.run()
        assert job.state is JobState.COMPLETED

    def test_policy_shrink_racing_forced_shrink_requeues(self):
        """Regression: a policy shrink landing between forced-issue and
        forced-service can strip the healthy nodes and leave the job with
        only its dead node; servicing must requeue, not shrink to 0."""
        env, _, machine, ctl = setup(nodes=3)
        job = ctl.submit(flex_job(2, steps=8, min_procs=1, max_procs=2))
        env.run(until=1.0)
        assert job.is_running and job.num_nodes == 2
        # Node 0 dies: forced shrink to 1 queued for the next point.
        ctl.fail_node(0)
        assert ctl.forced[job.job_id].target_procs == 1
        # A (simulated) racing policy shrink releases the HEALTHY node 1
        # first, leaving the job holding only the dead node 0.
        ctl.shrink_job(job, 1, victims=(1,))
        assert job.nodes == (0,)
        env.run()
        # The forced service found nothing to shrink to and requeued;
        # with node 1 free the restart completes (rather than the whole
        # simulation crashing on an invalid shrink-to-0).
        assert job.requeues == 1
        assert job.state is JobState.COMPLETED

    def test_two_failures_before_service_yield_one_decision_one_shrink(self):
        """Regression: a failure that supersedes a still-unserviced forced
        decision must not record a second RESIZE_DECISION — one shrink
        evacuates both dead nodes and the trace stays one-decision-one-ack."""
        env, _, machine, ctl = setup(nodes=6)
        job = ctl.submit(flex_job(5, steps=6, max_procs=6))
        inject(
            ctl,
            # Both land inside the same compute batch (service is ~t=20.3).
            FaultEvent(time=15.0, kind=FaultKind.NODE_FAIL, node=2),
            FaultEvent(time=16.0, kind=FaultKind.NODE_FAIL, node=3),
        )
        env.run()
        assert job.state is JobState.COMPLETED
        shrinks = ctl.trace.of_kind(EventKind.RESIZE_SHRINK)
        assert len(shrinks) == 1
        assert sorted(shrinks[0].data["released"]) == [2, 3]
        forced_decisions = [
            e for e in ctl.trace.of_kind(EventKind.RESIZE_DECISION)
            if e.data.get("reason") == "node_failure"
        ]
        assert len(forced_decisions) == 1

    def test_second_failure_during_evacuation_window(self):
        """A node that dies while the job is mid-evacuation (paying the
        quiesce/spawn/redistribution costs of the first forced shrink)
        must not derail the in-flight shrink: the first shrink releases
        one dead node, and the second failure's own forced decision
        evacuates the other at the next reconfiguring point."""
        env, _, machine, ctl = setup(nodes=6)
        job = ctl.submit(flex_job(5, steps=6, max_procs=6))
        inject(
            ctl,
            FaultEvent(time=15.0, kind=FaultKind.NODE_FAIL, node=2),
            # The forced shrink is serviced at t=20.3 and completes at
            # ~21.07; this lands inside that window, on another held node.
            FaultEvent(time=20.7, kind=FaultKind.NODE_FAIL, node=1),
        )
        env.run()
        assert job.state is JobState.COMPLETED
        assert job.requeues == 0
        shrinks = ctl.trace.of_kind(EventKind.RESIZE_SHRINK)
        released = [idx for e in shrinks for idx in e.data["released"]]
        assert sorted(released) == [1, 2]
        assert job.num_nodes == 3
        # Decision/ack bookkeeping: one RESIZE_DECISION per evacuation
        # actually performed (a failure superseding an unserviced forced
        # decision must not add a second, never-acked one).
        forced_decisions = [
            e for e in ctl.trace.of_kind(EventKind.RESIZE_DECISION)
            if e.data.get("reason") == "node_failure"
        ]
        assert len(forced_decisions) == len(shrinks)

    def test_deferred_recovery_respects_admin_drain(self):
        """Regression: a repair completing at release time must not lift
        an operator drain — the node parks as DRAINING, never allocatable,
        until the drain is explicitly resumed."""
        env, _, machine, ctl = setup(nodes=4)
        job = ctl.submit(rigid_job(4, steps=2))
        env.run(until=1.0)
        ctl.drain_node(0)          # operator drains a held node
        machine.fail_node(0)       # ...then it dies under the job
        assert machine.recover_node(0) is False  # repair deferred: held
        ctl.requeue_job(job)       # release path runs the deferred repair
        assert machine.nodes[0].state is NodeState.DRAINING
        assert machine.free_count == 3
        ctl.resume_node(0)
        assert machine.free_count == 4

    def test_deferred_recovery_completes_after_evacuation(self):
        env, _, machine, ctl = setup(nodes=4)
        job = ctl.submit(flex_job(4, steps=6))
        inject(
            ctl,
            FaultEvent(time=15.0, kind=FaultKind.NODE_FAIL, node=2),
            # Repair arrives while the job still holds the dead node.
            FaultEvent(time=15.5, kind=FaultKind.NODE_RECOVER, node=2),
        )
        env.run()
        assert job.state is JobState.COMPLETED
        # The deferred repair completed when the shrink released node 2.
        assert machine.nodes[2].state is NodeState.IDLE
        recover = ctl.trace.of_kind(EventKind.NODE_RECOVER)
        assert recover[0].data["deferred"] is True


class TestDegradationWindows:
    def test_slowdown_stretches_steps_then_expires(self):
        env, cluster, machine, ctl = setup(nodes=4)
        job = ctl.submit(rigid_job(4, steps=2))  # 2 x 10 s nominal
        inject(
            ctl,
            FaultEvent(time=0.0, kind=FaultKind.SLOWDOWN, node=0,
                       factor=2.0, duration=1000.0),
        )
        env.run()
        # Both steps charged at the slowest node's 2x factor.
        assert job.end_time == pytest.approx(40.0)

    def test_slowdown_does_not_delay_reconfiguring_points(self):
        """Regression: batch sizing must price steps at the degraded
        rate, or a slowdown pushes the next reconfiguring point — where
        forced shrinks are serviced — late by the slowdown factor."""
        env, _, machine, ctl = setup(nodes=4)
        # 60 s inhibitor period, 10 s nominal steps, 2x slowdown from t=0.
        app = app_of(steps=30, step_time=10.0, at=2, max_procs=2,
                     sched_period=60.0)
        job = ctl.submit(
            Job(name="f", num_nodes=2, time_limit=100_000.0,
                job_class=JobClass.MALLEABLE, resize_request=app.resize,
                payload=app)
        )
        inject(
            ctl,
            FaultEvent(time=0.0, kind=FaultKind.SLOWDOWN, node=0,
                       factor=2.0, duration=1_000_000.0),
        )
        env.run(until=200.0)
        checks = [e.time for e in ctl.trace.of_kind(EventKind.DMR_CHECK)]
        assert len(checks) >= 2
        # Steps cost 20 s under the slowdown; the first serviced check
        # must land at the inhibitor boundary t=60 (3 degraded steps),
        # not at t=120 as nominal-rate batch sizing would produce.
        assert checks[0] == pytest.approx(60.0, abs=1.0)
        assert checks[1] == pytest.approx(120.15, abs=1.0)

    def test_slowdown_restores_after_duration(self):
        env, _, machine, ctl = setup(nodes=4)
        inject(
            ctl,
            FaultEvent(time=1.0, kind=FaultKind.SLOWDOWN, node=0,
                       factor=3.0, duration=5.0),
        )
        env.run(until=2.0)
        assert machine.nodes[0].perf_factor == 3.0
        env.run(until=7.0)
        assert machine.nodes[0].perf_factor == 1.0

    def test_overlapping_slowdowns_leave_no_residual(self):
        """Regression: two overlapping windows on the same node must end
        at the nominal factor, not at the first window's value."""
        env, _, machine, ctl = setup(nodes=4)
        inject(
            ctl,
            FaultEvent(time=1.0, kind=FaultKind.SLOWDOWN, node=0,
                       factor=2.0, duration=10.0),
            FaultEvent(time=5.0, kind=FaultKind.SLOWDOWN, node=0,
                       factor=3.0, duration=100.0),
        )
        env.run(until=6.0)
        assert machine.nodes[0].perf_factor == 3.0  # latest window wins
        env.run(until=12.0)
        assert machine.nodes[0].perf_factor == 3.0  # first expiry: no-op
        env.run(until=110.0)
        assert machine.nodes[0].perf_factor == 1.0  # back to nominal

    def test_same_factor_overlapping_windows_do_not_end_early(self):
        """Regression: two overlapping windows with the SAME factor are
        distinct generations — the first expiry must not cut the second
        window short."""
        env, _, machine, ctl = setup(nodes=4)
        inject(
            ctl,
            FaultEvent(time=0.0, kind=FaultKind.SLOWDOWN, node=2,
                       factor=2.0, duration=100.0),
            FaultEvent(time=50.0, kind=FaultKind.SLOWDOWN, node=2,
                       factor=2.0, duration=100.0),
        )
        env.run(until=101.0)
        assert machine.nodes[2].perf_factor == 2.0  # second window holds
        env.run(until=151.0)
        assert machine.nodes[2].perf_factor == 1.0

    def test_network_degrade_scales_redistribution(self):
        env, _, machine, ctl = setup(nodes=4)
        inject(
            ctl,
            FaultEvent(time=1.0, kind=FaultKind.NETWORK_DEGRADE,
                       factor=4.0, duration=10.0),
        )
        env.run(until=2.0)
        assert machine.network_factor == 4.0
        env.run(until=12.0)
        assert machine.network_factor == 1.0
        assert ctl.trace.of_kind(EventKind.NET_DEGRADE)


class TestInjectorRobustness:
    def test_fault_on_out_of_range_node_rejected(self):
        env, _, machine, ctl = setup(nodes=4)
        from repro.errors import FaultError

        with pytest.raises(FaultError):
            FaultInjector(
                ctl,
                FaultPlan.scripted(
                    [FaultEvent(time=1.0, kind=FaultKind.NODE_FAIL, node=99)]
                ),
            )

    def test_double_failure_of_same_node_skipped(self):
        env, _, machine, ctl = setup(nodes=4)
        injector = inject(
            ctl,
            FaultEvent(time=1.0, kind=FaultKind.NODE_FAIL, node=0),
            FaultEvent(time=2.0, kind=FaultKind.NODE_FAIL, node=0),
        )
        env.run(until=3.0)
        # Failing an already-down node is a skipped no-op: no phantom
        # NODE_FAIL in the trace (the resilience table counts those).
        assert machine.nodes[0].state is NodeState.DOWN
        assert injector.injected == 1
        assert injector.skipped == 1
        assert len(ctl.trace.of_kind(EventKind.NODE_FAIL)) == 1

    def test_slowdown_on_down_node_counts_as_skipped_only(self):
        """Regression: a skipped window must not also count as injected."""
        env, _, machine, ctl = setup(nodes=4)
        injector = inject(
            ctl,
            FaultEvent(time=1.0, kind=FaultKind.NODE_FAIL, node=0),
            FaultEvent(time=2.0, kind=FaultKind.SLOWDOWN, node=0,
                       factor=2.0, duration=5.0),
        )
        env.run(until=3.0)
        assert injector.injected == 1
        assert injector.skipped == 1
        assert injector.injected + injector.skipped == len(injector.plan)

    def test_recover_of_healthy_node_skipped(self):
        env, _, machine, ctl = setup(nodes=4)
        injector = inject(
            ctl, FaultEvent(time=1.0, kind=FaultKind.NODE_RECOVER, node=0)
        )
        env.run(until=2.0)
        assert injector.skipped == 1
        assert machine.free_count == 4
