#!/usr/bin/env python
"""Tour of the public facade: Session, observers, and the registry.

Three stations:

1. build a :class:`repro.api.Session` and run a paired fixed/flexible
   comparison in a few declarative lines;
2. attach observers — a progress printer built from callbacks and a
   :class:`~repro.api.TimelineObserver` that assembles the paper's
   evolution series live, instead of scraping the trace afterwards;
3. render a paper artifact through the declarative registry, exactly as
   ``python -m repro`` does.

Run:  python examples/session_api.py
"""

from repro.api import CallbackObserver, Session, TimelineObserver, builtin_registry
from repro.cluster import marenostrum_preliminary
from repro.metrics import format_table, sparkline
from repro.runtime import RuntimeConfig
from repro.workload import FSWorkloadConfig


def main() -> None:
    # -- 1. a composable session -------------------------------------------
    session = (
        Session(cluster=marenostrum_preliminary())
        .with_runtime(RuntimeConfig(async_mode=False))
        .with_seed(42)
    )
    spec = session.fs_workload(12, config=FSWorkloadConfig(steps=8))

    pair = session.run_paired(spec)
    print(
        format_table(
            ["rendition", "makespan (s)", "avg wait (s)"],
            [
                ["fixed", pair.fixed.makespan, pair.fixed.summary.avg_wait_time],
                ["flexible", pair.flexible.makespan,
                 pair.flexible.summary.avg_wait_time],
            ],
            title=f"{spec.name}: gain {pair.makespan_gain:.1f}%",
        )
    )

    # -- 2. live observers ---------------------------------------------------
    resizes = []
    timeline = TimelineObserver()
    watched = session.observe(
        CallbackObserver(
            on_resize=lambda t, job, e: resizes.append(
                f"t={t:7.1f}  {job.name} {e.kind.value} -> {e['new_size']} nodes"
            )
        ),
        timeline,
    )
    watched.run(spec, flexible=True)
    print("\nfirst resizes, seen live:")
    for line in resizes[:5]:
        print(" ", line)
    alloc = timeline.allocation_series()
    print("\nallocated nodes over time (observer-built series):")
    print(" ", sparkline(alloc, 0.0, alloc.times[-1]))

    # -- 3. the artifact registry -------------------------------------------
    registry = builtin_registry()
    print("\nregistered artifacts:", ", ".join(registry.names()))
    print("\nrendering 'fig1' through the registry:\n")
    print(registry.render("fig1"))


if __name__ == "__main__":
    main()
