#!/usr/bin/env python
"""Replay a cluster log through the malleability machinery.

Round-trips a workload through the Standard Workload Format (the format
of the Parallel Workloads Archive): generate a Feitelson workload, export
it as SWF, re-import the log, and run the imported workload both rigid
and malleable — the workflow for evaluating the DMR approach on real
site logs.

Run:  python examples/swf_replay.py
"""

from repro.api import Session
from repro.cluster import marenostrum_preliminary
from repro.metrics import format_table, gain_percent
from repro.workload import (
    FSWorkloadConfig,
    export_results,
    export_spec,
    fs_workload,
    parse_swf,
)


def main() -> None:
    # 1. A workload (stand-in for a downloaded site log).
    original = fs_workload(20, seed=42, config=FSWorkloadConfig(steps=10))
    swf_text = export_spec(original)
    print("=== SWF export (first lines) ===")
    print("\n".join(swf_text.splitlines()[:7]), "\n...")

    # 2. Re-import: every SWF job becomes a malleable iterative app.
    replay = parse_swf(swf_text, steps=10)
    print(f"\nre-imported {len(replay)} jobs from the SWF text")

    # 3. Run the replay rigid and malleable (the CLI equivalent:
    #    python -m repro run --workload log.swf --rigid/--flexible).
    session = Session(cluster=marenostrum_preliminary())
    fixed = session.run(replay, flexible=False)
    flexible = session.run(replay, flexible=True)

    print(
        format_table(
            ["rendition", "makespan (s)", "avg wait (s)", "utilization (%)"],
            [
                ["fixed", fixed.makespan, fixed.summary.avg_wait_time,
                 100 * fixed.summary.utilization_rate],
                ["flexible", flexible.makespan, flexible.summary.avg_wait_time,
                 100 * flexible.summary.utilization_rate],
            ],
            title="\nSWF replay on 20 nodes",
        )
    )
    print(f"malleability gain on this log: "
          f"{gain_percent(fixed.makespan, flexible.makespan):.1f}%")

    # 4. Export the executed (flexible) run back to SWF for other tools.
    out = export_results(flexible.jobs)
    print("\n=== SWF of the executed flexible run (first lines) ===")
    print("\n".join(out.splitlines()[:5]), "\n...")


if __name__ == "__main__":
    main()
