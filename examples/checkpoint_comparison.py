#!/usr/bin/env python
"""Why not just checkpoint/restart? The paper's Fig. 1 motivation.

Compares the cost of reconfiguring an N-body job (48 initial processes)
through checkpoint/restart against the DMR API, broken down by phase, for
several resize targets and state sizes.

Run:  python examples/checkpoint_comparison.py
"""

from repro.checkpoint import CheckpointRestart, DMRReconfiguration, spawning_factor
from repro.cluster import GiB, marenostrum_production
from repro.metrics import format_table


def main() -> None:
    cluster = marenostrum_production()
    cr = CheckpointRestart(cluster)
    dmr = DMRReconfiguration(cluster)

    for state in (1.0 * GiB, 8.0 * GiB):
        rows = []
        for target in (12, 24, 48):
            c = cr.reconfigure(state, 48, target)
            d = dmr.reconfigure(state, 48, target)
            rows.append(
                [
                    f"48 -> {target}",
                    c.total,
                    f"write {c['checkpoint_write']:.1f} / requeue "
                    f"{c['requeue']:.0f} / relaunch {c['relaunch']:.1f} / "
                    f"read {c['checkpoint_read']:.1f}",
                    d.total,
                    f"{spawning_factor(c, d):.1f}x",
                ]
            )
        print(
            format_table(
                ["resize", "C/R (s)", "C/R phases", "DMR (s)", "factor"],
                rows,
                title=f"Reconfiguration cost, {state / GiB:.0f} GiB of state",
            )
        )


if __name__ == "__main__":
    main()
