#!/usr/bin/env python
"""Workload study: fixed vs flexible, the paper's Section IX in miniature.

Generates a 50-job workload mixing CG, Jacobi and N-body (one third
each), runs it twice on the 65-node production cluster — once rigid, once
malleable — and prints the paper's headline comparisons: execution time
(Fig. 10), waiting time (Fig. 11), the Table II measures and an ASCII
rendition of the Fig. 12 evolution charts.

Run:  python examples/workload_study.py [num_jobs]
"""

import sys

from repro.api import Session
from repro.cluster import marenostrum_production
from repro.metrics import format_evolution, format_table, gain_percent
from repro.runtime import RuntimeConfig
from repro.workload import realapp_workload


def main(num_jobs: int = 50) -> None:
    spec = realapp_workload(num_jobs, seed=2017)
    print(f"workload: {spec.name} ({num_jobs} jobs, CG/Jacobi/N-body mix)")

    session = (
        Session(cluster=marenostrum_production())
        .with_runtime(RuntimeConfig())
        .with_seed(2017)
    )
    pair = session.run_paired(spec)
    fixed, flex = pair.fixed.summary, pair.flexible.summary

    print(
        format_table(
            ["measure", "fixed", "flexible", "gain (%)"],
            [
                ["workload execution time (s)", fixed.makespan, flex.makespan,
                 gain_percent(fixed.makespan, flex.makespan)],
                ["avg job waiting time (s)", fixed.avg_wait_time,
                 flex.avg_wait_time,
                 gain_percent(fixed.avg_wait_time, flex.avg_wait_time)],
                ["avg job execution time (s)", fixed.avg_execution_time,
                 flex.avg_execution_time,
                 gain_percent(fixed.avg_execution_time, flex.avg_execution_time)],
                ["avg job completion time (s)", fixed.avg_completion_time,
                 flex.avg_completion_time,
                 gain_percent(fixed.avg_completion_time, flex.avg_completion_time)],
                ["resource utilization (%)", 100 * fixed.utilization_rate,
                 100 * flex.utilization_rate, "-"],
                ["reconfigurations", fixed.resize_count, flex.resize_count, "-"],
            ],
            title="Fixed vs flexible (Table II measures)",
        )
    )

    for result in (pair.fixed, pair.flexible):
        label = "flexible" if result.flexible else "fixed"
        print(
            format_evolution(
                f"evolution ({label})",
                [
                    ("allocated nodes", result.allocation_series()),
                    ("running jobs", result.running_series()),
                    ("completed jobs", result.completed_series()),
                ],
                0.0,
                result.makespan,
            )
        )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 50)
