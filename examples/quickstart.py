#!/usr/bin/env python
"""Quickstart: a malleable job on a simulated Slurm cluster.

Builds a 16-node cluster, submits one malleable Flexible-Sleep job and a
rigid competitor, and shows the DMR machinery in action: the malleable
job expands into idle nodes, then shrinks when the rigid job queues up.

Run:  python examples/quickstart.py
"""

from repro.apps import flexible_sleep
from repro.cluster import ClusterConfig
from repro.metrics import EventKind
from repro.runtime import install_runtime_launcher
from repro.sim import Environment
from repro.slurm import Job, JobClass, SlurmController


def main() -> None:
    # 1. Stand up the simulated system: machine + Slurm + Nanos++ hook.
    env = Environment()
    cluster = ClusterConfig(num_nodes=16, name="quickstart")
    machine = cluster.build_machine()
    controller = SlurmController(env, machine)
    install_runtime_launcher(controller, cluster)

    # 2. A malleable application: 6 steps of 30 s at 4 nodes, perfectly
    #    scalable between 1 and 16 nodes (factor 2), 1 GB of state.
    app = flexible_sleep(step_time=30.0, at_procs=4, steps=6, max_procs=16)
    flexible = Job(
        name="malleable-sim",
        num_nodes=4,
        time_limit=400.0,
        job_class=JobClass.MALLEABLE,
        resize_request=app.resize,
        payload=app,
    )
    controller.submit(flexible)

    # 3. A rigid job arrives later and needs half the machine.
    def late_submission():
        yield env.timeout(15.0)
        rigid_app = flexible_sleep(step_time=20.0, at_procs=8, steps=2)
        controller.submit(
            Job(name="rigid", num_nodes=8, time_limit=100.0, payload=rigid_app)
        )

    env.process(late_submission())

    # 4. Run the simulation to completion and narrate the trace.
    env.run()

    print("=== event trace ===")
    for event in controller.trace.of_kind(
        EventKind.JOB_SUBMIT,
        EventKind.JOB_START,
        EventKind.RESIZE_EXPAND,
        EventKind.RESIZE_SHRINK,
        EventKind.JOB_END,
    ):
        details = ", ".join(f"{k}={v}" for k, v in event.data.items())
        print(f"t={event.time:8.1f}s  job {event.job_id}  {event.kind.value:15s} {details}")

    print("\n=== outcome ===")
    for job in controller.finished:
        if job.is_resizer:
            continue
        print(
            f"{job.name}: waited {job.wait_time:.1f}s, ran {job.execution_time:.1f}s, "
            f"resizes: {[(round(t), a, b) for t, a, b in job.resizes]}"
        )


if __name__ == "__main__":
    main()
