#!/usr/bin/env python
"""Tour of the Slurm resize protocol, one API call at a time.

Walks through Section III of the paper literally: expanding job A by
submitting a dependent resizer job B, updating B to zero nodes, cancelling
it, and updating A with the detached node set — then shrinking A back with
a single update. Ends with the sacct-style accounting view.

Run:  python examples/slurm_api_tour.py
"""

from repro.cluster import Machine
from repro.core import ResizeRequest
from repro.sim import Environment
from repro.slurm import Accounting, Job, JobClass, SlurmAPI, SlurmController


def main() -> None:
    env = Environment()
    machine = Machine(16)
    controller = SlurmController(env, machine)
    api = SlurmAPI(controller)

    job_a = api.submit(
        Job(
            name="job-A",
            num_nodes=4,
            time_limit=1000.0,
            job_class=JobClass.MALLEABLE,
            resize_request=ResizeRequest(min_procs=1, max_procs=16),
        )
    )
    env.run(until=0.1)
    print(f"job A running on {api.job_nodelist(job_a)}")

    print("\n-- expanding A by 4 nodes (Section III, steps 1-4) --")
    job_b = api.submit_dependent(job_a, extra_nodes=4)   # step 1
    env.run(until=0.2)
    print(f"1. resizer B submitted and allocated: {api.job_nodelist(job_b)}")

    detached = api.update_job_to_zero_nodes(job_b)       # step 2
    print(f"2. B updated to 0 nodes; detached node set: {detached}")

    api.cancel(job_b)                                    # step 3
    print(f"3. B cancelled (state: {job_b.state.value})")

    api.update_job_nodes(job_a, 8, attach=detached)      # step 4
    print(f"4. A updated to {job_a.num_nodes} nodes: {api.job_nodelist(job_a)}")

    print("\n-- shrinking A back to 2 nodes (single update) --")
    api.update_job_nodes(job_a, 2)
    print(f"A now on {api.job_nodelist(job_a)}; resize history: "
          f"{[(round(t, 1), o, n) for t, o, n in job_a.resizes]}")

    print("\n-- asking the reconfiguration plug-in (Algorithm 1) --")
    decision = api.check_status(job_a, job_a.resize_request)
    print(f"empty queue, 14 free nodes -> {decision.action.value} "
          f"to {decision.target_procs} ({decision.reason.value})")

    controller.finish_job(job_a)
    env.run()
    print("\n" + Accounting(controller.finished, include_resizers=True).sacct_table())


if __name__ == "__main__":
    main()
