#!/usr/bin/env python
"""A real malleable solver: distributed CG resized mid-run.

Runs the paper's Listing 3 pattern with actual data on the in-process MPI
substrate: a conjugate-gradient solve starts on 2 ranks, expands to 8 at
iteration 10 (spawn + block partitioning + offload), shrinks back to 4 at
iteration 20 (senders -> group receivers -> offload), and still produces
exactly the same solution as a never-resized run.

Run:  python examples/malleable_solver.py
"""

import numpy as np

from repro.apps.kernels import cg_reference, make_spd_system, run_cg

N = 64
ITERATIONS = 30
SCHEDULE = {10: 8, 20: 4}  # iteration -> new process count


def main() -> None:
    a, b = make_spd_system(N, seed=42)

    print(f"solving a {N}x{N} SPD system with {ITERATIONS} CG iterations")
    print(f"resize schedule: start at 2 ranks, then {SCHEDULE}")

    resized = run_cg(a, b, ITERATIONS, nprocs=2, schedule=SCHEDULE)
    never_resized = run_cg(a, b, ITERATIONS, nprocs=2)
    reference = cg_reference(a, b, ITERATIONS)

    drift_vs_static = float(np.abs(resized - never_resized).max())
    drift_vs_reference = float(np.abs(resized - reference).max())
    residual = float(np.linalg.norm(a @ resized - b) / np.linalg.norm(b))

    print(f"max |resized - never-resized| : {drift_vs_static:.3e}")
    print(f"max |resized - sequential|    : {drift_vs_reference:.3e}")
    print(f"relative residual ||Ax-b||/||b|| : {residual:.3e}")

    assert drift_vs_static < 1e-8, "malleability changed the answer!"
    print("\nOK: expanding and shrinking mid-solve preserved the solution.")


if __name__ == "__main__":
    main()
