"""Multi-seed ensembles with the sweep engine.

Reproduces the Fig. 3 headline ("flexible workloads finish 10-15%
faster") as a *band* instead of a point estimate: five seeds per grid
point, executed through the sweep engine with an on-disk store, then
aggregated into mean ± 95% CI per metric.

Run from the repository root::

    PYTHONPATH=src python examples/sweep_ensemble.py
"""

from repro.store import default_store
from repro.sweep import Sweep, SweepRunner


def main() -> None:
    # 2 sizes x 2 policy presets x 5 seeds = 20 independent cells.
    sweep = Sweep.over(
        seeds=5,
        workloads=["fs"],
        num_jobs=[25, 50],
        policies=["default", "deepest"],
    )

    store = default_store()  # .repro-cache: the second run is instant
    runner = SweepRunner(jobs=2, store=store)
    result = runner.run(sweep)

    aggregate = result.aggregate()
    print(aggregate.as_table())
    print(
        f"{len(result)} cells ({result.cached_cells} served from "
        f"{store.root}), compute {result.compute_wall_time:.1f}s"
    )

    # The aggregate is also a plain nested dict for post-processing.
    for group, metrics in aggregate.as_dict().items():
        gain = metrics["makespan_gain_pct"]
        print(f"{group}: flexible gains {gain['mean']:.1f}% "
              f"± {gain['ci95_half']:.1f} (n={gain['n']})")


if __name__ == "__main__":
    main()
